"""Simulated IonQ trapped-ion backend.

IonQ's machine (accessed through Azure Quantum in the paper) differs from the
IBM-Q superconducting sites in two ways that matter for QuClassi:

* **full connectivity** — any qubit pair supports a two-qubit gate, so the
  SWAP-test circuit needs zero routing SWAPs, whereas IBM-Q Cairo's
  heavy-hexagon topology forces ~21 extra CNOTs for the (3, 6) classifier;
* **gate fidelities** — two-qubit error is lower and readout error much
  lower, but gates are slower (irrelevant here since latency is only
  book-kept).

Those two effects are exactly what the paper credits for IonQ's ≈80 % vs
Cairo's ≈72 % accuracy on the (3, 6) task.
"""

from __future__ import annotations

from repro.hardware.calibration import CalibrationProfile, get_calibration
from repro.hardware.job import JobLedger
from repro.quantum.backend import DeviceProperties, NoisyBackend
from repro.quantum.simulator import SimulationResult
from repro.utils.rng import RandomState


class IonQBackend(NoisyBackend):
    """Simulated IonQ trapped-ion device (fully connected)."""

    def __init__(
        self, seed: RandomState = None, simulate_queue_latency: bool = False
    ) -> None:
        profile = get_calibration("ionq_trapped_ion")
        self.calibration: CalibrationProfile = profile
        properties = DeviceProperties(
            name=profile.name,
            num_qubits=profile.num_qubits,
            coupling_map=profile.coupling_map(),
            noise_model=profile.noise_model(),
            max_shots=10_000,
            queue_latency_seconds=profile.queue_latency_seconds,
        )
        super().__init__(
            properties, seed=seed, simulate_queue_latency=simulate_queue_latency
        )
        #: Ledger of every job executed on this backend instance.
        self.ledger = JobLedger()

    def _record_job(self, result: SimulationResult) -> None:
        """Ledger every executed circuit, single runs and batches alike."""
        self.ledger.record(self.name, result, self.properties.queue_latency_seconds)


def ionq(seed: RandomState = None) -> IonQBackend:
    """Factory matching the :mod:`repro.hardware.ibmq` helpers."""
    return IonQBackend(seed=seed)
