"""Simulated IBM-Q superconducting backends.

The paper evaluates QuClassi on several IBM Quantum sites (London, New York,
Melbourne for Iris training — Fig. 11; Rome for 4-dimensional MNIST —
Fig. 12; Cairo for the IonQ comparison).  :class:`IBMQBackend` reproduces the
relevant behaviour offline: circuits are decomposed to the native basis,
routed onto the site's coupling map (inserting SWAPs where the topology
requires them), executed on a density-matrix simulator with the site's
calibrated noise model, and read out through per-qubit assignment error.
"""

from __future__ import annotations

from repro.hardware.calibration import CalibrationProfile, get_calibration
from repro.hardware.job import JobLedger
from repro.quantum.backend import DeviceProperties, NoisyBackend
from repro.quantum.simulator import SimulationResult
from repro.utils.rng import RandomState


class IBMQBackend(NoisyBackend):
    """One simulated IBM-Q site.

    Parameters
    ----------
    device:
        Site name (e.g. ``"ibmq_london"``); see
        :func:`repro.hardware.calibration.available_devices`.
    seed:
        Seed for shot sampling.
    simulate_queue_latency:
        When True, each job submission actually sleeps for the site's
        calibrated queue latency instead of only book-keeping it (see
        :class:`~repro.quantum.backend.NoisyBackend`).
    """

    def __init__(
        self,
        device: str = "ibmq_london",
        seed: RandomState = None,
        simulate_queue_latency: bool = False,
    ) -> None:
        profile = get_calibration(device)
        if not profile.name.startswith("ibmq"):
            raise ValueError(f"{device!r} is not an IBM-Q device profile")
        self.calibration: CalibrationProfile = profile
        properties = DeviceProperties(
            name=profile.name,
            num_qubits=profile.num_qubits,
            coupling_map=profile.coupling_map(),
            noise_model=profile.noise_model(),
            max_shots=8192,
            queue_latency_seconds=profile.queue_latency_seconds,
        )
        super().__init__(
            properties, seed=seed, simulate_queue_latency=simulate_queue_latency
        )
        #: Ledger of every job executed on this backend instance.
        self.ledger = JobLedger()

    def _record_job(self, result: SimulationResult) -> None:
        """Ledger every executed circuit, single runs and batches alike."""
        self.ledger.record(self.name, result, self.properties.queue_latency_seconds)


def ibmq_london(seed: RandomState = None) -> IBMQBackend:
    """5-qubit T-topology site used for the paper's Iris hardware run."""
    return IBMQBackend("ibmq_london", seed=seed)


def ibmq_new_york(seed: RandomState = None) -> IBMQBackend:
    """5-qubit bow-tie-topology site (the paper's 'IBM New York')."""
    return IBMQBackend("ibmq_new_york", seed=seed)


def ibmq_melbourne(seed: RandomState = None) -> IBMQBackend:
    """15-qubit ladder-topology site, the noisiest of the Iris runs."""
    return IBMQBackend("ibmq_melbourne", seed=seed)


def ibmq_rome(seed: RandomState = None) -> IBMQBackend:
    """5-qubit site used for the paper's 4-dimensional MNIST hardware run."""
    return IBMQBackend("ibmq_rome", seed=seed)


def ibmq_cairo(seed: RandomState = None) -> IBMQBackend:
    """27-qubit heavy-hexagon site used in the IonQ routing comparison."""
    return IBMQBackend("ibmq_cairo", seed=seed)
