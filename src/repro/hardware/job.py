"""Job accounting for the simulated providers.

Real IBM-Q / IonQ runs go through a shared public queue; the paper remarks on
the overhead this adds.  The simulated providers do not sleep, but they track
per-job records — circuit statistics, shots, simulated queue latency — so
experiments can report the same cost accounting a real run would.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional

from repro.quantum.simulator import SimulationResult


@dataclasses.dataclass
class JobRecord:
    """Bookkeeping for one executed circuit."""

    job_id: int
    backend_name: str
    circuit_name: str
    shots: Optional[int]
    cx_count: int
    inserted_swaps: int
    depth: int
    queue_latency_seconds: float

    @property
    def total_two_qubit_gates(self) -> int:
        """Post-routing CNOT count (the dominant error source)."""
        return self.cx_count


class JobLedger:
    """Accumulates :class:`JobRecord` entries for a provider session."""

    def __init__(self) -> None:
        self._records: List[JobRecord] = []
        self._counter = itertools.count()

    def record(self, backend_name: str, result: SimulationResult, queue_latency_seconds: float) -> JobRecord:
        """Append a record extracted from a backend's simulation result."""
        transpile_stats: Dict[str, int] = result.metadata.get("transpile", {})  # type: ignore[assignment]
        record = JobRecord(
            job_id=next(self._counter),
            backend_name=backend_name,
            circuit_name=result.circuit_name,
            shots=result.shots,
            cx_count=int(transpile_stats.get("cx_count", 0)),
            inserted_swaps=int(transpile_stats.get("inserted_swaps", 0)),
            depth=int(transpile_stats.get("depth", 0)),
            queue_latency_seconds=float(queue_latency_seconds),
        )
        self._records.append(record)
        return record

    def extend(self, records: List[JobRecord]) -> List[JobRecord]:
        """Append already-executed records (e.g. from a worker's shard ledger).

        Used by sharded execution to merge per-worker ledgers back into the
        parent backend's ledger: the caller iterates shards in shard-index
        order and each worker's records arrive in submission order, so the
        merged sequence is deterministic no matter how the shards raced.
        Job ids are re-issued from this ledger's own counter so the merged
        ledger stays contiguous.
        """
        merged = []
        for record in records:
            merged.append(dataclasses.replace(record, job_id=next(self._counter)))
        self._records.extend(merged)
        return merged

    # ------------------------------------------------------------------ #
    @property
    def records(self) -> List[JobRecord]:
        """Every recorded job, oldest first."""
        return list(self._records)

    @property
    def num_jobs(self) -> int:
        """Number of executed circuits."""
        return len(self._records)

    @property
    def total_shots(self) -> int:
        """Total shots across every job."""
        return sum(record.shots or 0 for record in self._records)

    @property
    def total_queue_latency_seconds(self) -> float:
        """Accumulated simulated queue latency."""
        return sum(record.queue_latency_seconds for record in self._records)

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics suitable for experiment reports."""
        if not self._records:
            return {"num_jobs": 0, "total_shots": 0, "mean_cx": 0.0, "mean_depth": 0.0,
                    "total_queue_latency_seconds": 0.0}
        return {
            "num_jobs": self.num_jobs,
            "total_shots": self.total_shots,
            "mean_cx": sum(r.cx_count for r in self._records) / self.num_jobs,
            "mean_depth": sum(r.depth for r in self._records) / self.num_jobs,
            "total_queue_latency_seconds": self.total_queue_latency_seconds,
        }

    def clear(self) -> None:
        """Drop every record (e.g. between experiments)."""
        self._records.clear()
