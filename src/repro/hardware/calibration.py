"""Calibration profiles of the simulated quantum devices.

Each profile summarises a device the paper ran on — the IBM-Q 5-qubit sites
used for the Iris and 4-dimensional MNIST experiments (London, New York/
Yorktown, Melbourne, Rome, the 27-qubit Cairo) and IonQ's trapped-ion machine
— as the handful of numbers that determine how it degrades a QuClassi
circuit: single-/two-qubit gate error, readout error, relaxation times, the
coupling topology and a representative queue latency.

The numbers are representative of publicly reported calibration ranges for
those machines circa 2021 rather than a specific calibration snapshot; the
experiments only rely on their *relative* ordering (e.g. Melbourne noisier
than London, IonQ's two-qubit fidelity high and connectivity full).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

from repro.exceptions import BackendError
from repro.quantum.noise import NoiseModel
from repro.quantum.topology import CouplingMap


@dataclasses.dataclass(frozen=True)
class CalibrationProfile:
    """Summary calibration data for one device.

    Attributes
    ----------
    name:
        Provider-style device name.
    num_qubits:
        Number of physical qubits.
    single_qubit_error:
        Depolarising probability per single-qubit gate.
    two_qubit_error:
        Depolarising probability per two-qubit gate.
    readout_error:
        Symmetric measurement assignment error.
    t1_us, t2_us:
        Representative relaxation/dephasing times in microseconds.
    gate_time_us:
        Representative single-qubit gate duration in microseconds.
    queue_latency_seconds:
        Typical public-queue delay per job (only reported in metadata).
    topology:
        Name of the coupling-map factory used to build the device graph.
    """

    name: str
    num_qubits: int
    single_qubit_error: float
    two_qubit_error: float
    readout_error: float
    t1_us: float
    t2_us: float
    gate_time_us: float
    queue_latency_seconds: float
    topology: str

    def coupling_map(self) -> CouplingMap:
        """Build the device's coupling map."""
        factories: Dict[str, Callable[[], CouplingMap]] = {
            "ibmq_5q_t": CouplingMap.ibmq_5q_t,
            "ibmq_5q_bowtie": CouplingMap.ibmq_5q_bowtie,
            "melbourne": lambda: CouplingMap.ibmq_melbourne_like(self.num_qubits),
            "falcon_27q": CouplingMap.ibmq_falcon_27q,
            "all_to_all": lambda: CouplingMap.all_to_all(self.num_qubits),
            "linear": lambda: CouplingMap.linear(self.num_qubits),
        }
        if self.topology not in factories:
            raise BackendError(f"unknown topology '{self.topology}' for device {self.name}")
        return factories[self.topology]()

    def noise_model(self) -> NoiseModel:
        """Build the device's noise model from the summary error rates."""
        return NoiseModel.from_error_rates(
            single_qubit_error=self.single_qubit_error,
            two_qubit_error=self.two_qubit_error,
            readout_error=self.readout_error,
            t1=self.t1_us,
            t2=self.t2_us,
            gate_time=self.gate_time_us,
        )


#: Registry of every simulated device, keyed by its lowercase name.
CALIBRATIONS: Dict[str, CalibrationProfile] = {
    "ibmq_london": CalibrationProfile(
        name="ibmq_london",
        num_qubits=5,
        single_qubit_error=0.0006,
        two_qubit_error=0.012,
        readout_error=0.022,
        t1_us=60.0,
        t2_us=70.0,
        gate_time_us=0.05,
        queue_latency_seconds=180.0,
        topology="ibmq_5q_t",
    ),
    "ibmq_new_york": CalibrationProfile(
        name="ibmq_new_york",
        num_qubits=5,
        single_qubit_error=0.0010,
        two_qubit_error=0.018,
        readout_error=0.035,
        t1_us=50.0,
        t2_us=55.0,
        gate_time_us=0.05,
        queue_latency_seconds=240.0,
        topology="ibmq_5q_bowtie",
    ),
    "ibmq_melbourne": CalibrationProfile(
        name="ibmq_melbourne",
        num_qubits=15,
        single_qubit_error=0.0015,
        two_qubit_error=0.028,
        readout_error=0.045,
        t1_us=45.0,
        t2_us=50.0,
        gate_time_us=0.06,
        queue_latency_seconds=300.0,
        topology="melbourne",
    ),
    "ibmq_rome": CalibrationProfile(
        name="ibmq_rome",
        num_qubits=5,
        single_qubit_error=0.0005,
        two_qubit_error=0.010,
        readout_error=0.020,
        t1_us=70.0,
        t2_us=80.0,
        gate_time_us=0.05,
        queue_latency_seconds=150.0,
        topology="ibmq_5q_t",
    ),
    "ibmq_cairo": CalibrationProfile(
        name="ibmq_cairo",
        num_qubits=27,
        single_qubit_error=0.0004,
        two_qubit_error=0.011,
        readout_error=0.018,
        t1_us=90.0,
        t2_us=100.0,
        gate_time_us=0.04,
        queue_latency_seconds=200.0,
        topology="falcon_27q",
    ),
    "ionq_trapped_ion": CalibrationProfile(
        name="ionq_trapped_ion",
        num_qubits=11,
        single_qubit_error=0.0004,
        two_qubit_error=0.006,
        readout_error=0.004,
        t1_us=10_000.0,
        t2_us=1_000.0,
        gate_time_us=0.1,
        queue_latency_seconds=600.0,
        topology="all_to_all",
    ),
}


def get_calibration(name: str) -> CalibrationProfile:
    """Look up a device profile by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in CALIBRATIONS:
        raise BackendError(
            f"unknown device '{name}'; available devices: {sorted(CALIBRATIONS)}"
        )
    return CALIBRATIONS[key]


def available_devices() -> list:
    """Names of every simulated device."""
    return sorted(CALIBRATIONS)
