"""Iris multi-class study: architectures, baselines and model persistence.

Reproduces the workflow behind the paper's Fig. 6 at example scale:

* trains QC-S, QC-SD and QC-SDE QuClassi variants on the 3-class Iris task,
* trains classical DNN baselines sized to comparable parameter budgets,
* prints an accuracy/parameter table and the per-class loss curves,
* saves the best quantum model to disk and reloads it.

Run with::

    python examples/iris_multiclass.py

Pass ``--workers N`` to shard each model's per-class training across a
worker pool (``--strategy`` picks thread or process workers); the trained
models are bit-identical to the serial run.
"""

import argparse
import tempfile

from repro.baselines import dnn_for_parameter_budget
from repro.core import QuClassi
from repro.datasets import load_iris, prepare_task
from repro.experiments import format_table
from repro.parallel import ShardExecutor


def train_quclassi_variants(data, epochs: int = 20, executor=None):
    """Train one model per layer architecture and return {name: model}."""
    models = {}
    for architecture in ("s", "sd", "sde"):
        model = QuClassi(
            num_features=data.num_features,
            num_classes=data.num_classes,
            architecture=architecture,
            seed=0,
        )
        model.fit(
            data.x_train, data.y_train, epochs=epochs, learning_rate=0.1,
            executor=executor,
        )
        models[f"QC-{architecture.upper()}"] = model
    return models


def train_dnn_baselines(data, budgets=(12, 56, 112), epochs: int = 30):
    """Train DNN-kP baselines on exactly the same normalised data."""
    models = {}
    for budget in budgets:
        dnn = dnn_for_parameter_budget(data.num_features, data.num_classes, budget, seed=0)
        dnn.fit(data.x_train, data.y_train, epochs=epochs, learning_rate=0.1)
        models[f"DNN-{dnn.num_parameters}P"] = dnn
    return models


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=0,
        help="shard per-class training across N workers (0 = serial)",
    )
    parser.add_argument(
        "--strategy", choices=("thread", "process"), default="thread",
        help="worker-pool strategy used with --workers",
    )
    args = parser.parse_args()
    executor = (
        ShardExecutor(args.strategy, max_workers=args.workers)
        if args.workers > 0
        else None
    )

    data = prepare_task(load_iris(), test_fraction=0.3, rng=0)

    quantum_models = train_quclassi_variants(data, executor=executor)
    classical_models = train_dnn_baselines(data)

    rows = []
    for name, model in {**quantum_models, **classical_models}.items():
        rows.append(
            {
                "model": name,
                "parameters": model.num_parameters,
                "train_accuracy": model.score(data.x_train, data.y_train),
                "test_accuracy": model.score(data.x_test, data.y_test),
            }
        )
    print("\nAccuracy vs parameter count (Fig. 6b at example scale)")
    print(format_table(rows))

    best_name = max(quantum_models, key=lambda n: quantum_models[n].score(data.x_test, data.y_test))
    best = quantum_models[best_name]
    print(f"\nPer-class loss curve of {best_name} (Fig. 6a at example scale):")
    per_class = best.history_.per_class_losses()
    for class_index, class_name in enumerate(data.class_names):
        final = per_class[-1, class_index]
        print(f"  class {class_name}: first={per_class[0, class_index]:.3f} final={final:.3f}")

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = handle.name
    best.save(path)
    restored = QuClassi.load(path)
    assert restored.score(data.x_test, data.y_test) == best.score(data.x_test, data.y_test)
    print(f"\nsaved and reloaded {best_name} from {path}")


if __name__ == "__main__":
    main()
