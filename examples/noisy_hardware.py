"""Running QuClassi on simulated quantum hardware (paper Section 5.4 workflow).

Trains a QC-S model on the simulator for the 4-dimensional (3, 6) task, then
evaluates the *same trained model* through three execution targets:

* the ideal statevector simulator,
* the simulated IonQ trapped-ion machine (fully connected — no routing SWAPs),
* the simulated IBM-Q Cairo machine (heavy-hexagon topology — every SWAP-test
  circuit needs ~21 extra routed CNOTs).

The printed table shows the accuracy and the per-circuit CNOT counts that
explain the gap, mirroring the paper's IonQ vs Cairo discussion.

Run with::

    python examples/noisy_hardware.py
"""

from repro.core import QuClassi, SwapTestFidelityEstimator
from repro.datasets import generate_synthetic_mnist, prepare_task
from repro.experiments import format_table
from repro.hardware import ibmq_cairo, ionq

DIGITS = (3, 6)
SHOTS = 4096


def main() -> None:
    dataset = generate_synthetic_mnist(digits=DIGITS, samples_per_digit=40, rng=2)
    data = prepare_task(dataset, classes=DIGITS, n_components=4, rng=2)

    model = QuClassi(num_features=4, num_classes=2, architecture="s", seed=0)
    model.fit(data.x_train, data.y_train, epochs=12, learning_rate=0.1)
    analytic_estimator = model.estimator

    rows = [
        {
            "backend": "ideal simulator",
            "test_accuracy": model.score(data.x_test, data.y_test),
            "cx_per_circuit": 16,   # 2 CSWAPs decompose into 8 CNOTs each
            "routed_extra_cx": 0,
        }
    ]

    for backend in (ionq(seed=0), ibmq_cairo(seed=0)):
        model.estimator = SwapTestFidelityEstimator(model.builder, backend=backend, shots=SHOTS)
        accuracy = model.score(data.x_test, data.y_test)
        stats = backend.last_transpile_stats
        rows.append(
            {
                "backend": backend.name,
                "test_accuracy": accuracy,
                "cx_per_circuit": stats["cx_count"],
                "routed_extra_cx": stats["added_cx"],
            }
        )
        summary = backend.ledger.summary()
        print(
            f"{backend.name}: {summary['num_jobs']} circuits, {summary['total_shots']} shots, "
            f"mean depth {summary['mean_depth']:.1f}"
        )
    model.estimator = analytic_estimator

    print("\nHardware comparison on the (3, 6) task (Section 5.4 at example scale)")
    print(format_table(rows))
    print(
        "\nThe fully connected trapped-ion backend needs no routing SWAPs, so it tracks the\n"
        "ideal accuracy closely; the heavy-hexagon superconducting chip pays for every\n"
        "routed CNOT with extra two-qubit noise."
    )


if __name__ == "__main__":
    main()
