"""Binary classification on the synthetic-MNIST substitute (paper Fig. 9 workflow).

Builds the full data path the paper uses for MNIST — render digit images,
flatten, PCA to 16 dimensions, min-max normalise — then trains a 17-qubit
QC-S QuClassi discriminator pair on the (3, 6) task and compares it against
the QuantumFlow-like and DNN baselines on exactly the same projected data.

Run with::

    python examples/mnist_binary.py
"""

from repro.baselines import QFpNetLikeClassifier, dnn_for_parameter_budget
from repro.core import QuClassi
from repro.datasets import generate_synthetic_mnist, prepare_task
from repro.experiments import format_table

DIGITS = (3, 6)
SAMPLES_PER_DIGIT = 60
EPOCHS = 12


def main() -> None:
    # Procedurally generated stand-in for MNIST (no network access needed);
    # the classifiers only ever see its 16-dimensional PCA projection.
    dataset = generate_synthetic_mnist(digits=DIGITS, samples_per_digit=SAMPLES_PER_DIGIT, rng=1)
    data = prepare_task(dataset, classes=DIGITS, n_components=16, rng=1)
    print(
        f"task {DIGITS[0]} vs {DIGITS[1]}: {data.x_train.shape[0]} train / "
        f"{data.x_test.shape[0]} test samples, {data.num_features} PCA dimensions"
    )

    quclassi = QuClassi(num_features=16, num_classes=2, architecture="s", seed=0)
    print(
        f"QuClassi QC-S: {quclassi.num_qubits} qubits per circuit, "
        f"{quclassi.num_parameters} trainable parameters"
    )
    quclassi.fit(data.x_train, data.y_train, epochs=EPOCHS, learning_rate=0.1)

    qf_pnet = QFpNetLikeClassifier(num_features=16, num_classes=2, hidden_units=8, seed=0)
    qf_pnet.fit(data.x_train, data.y_train, epochs=EPOCHS, learning_rate=0.05)

    dnn = dnn_for_parameter_budget(16, 2, parameter_budget=1218, seed=0)
    dnn.fit(data.x_train, data.y_train, epochs=25, learning_rate=0.1)

    rows = [
        {
            "model": "QuClassi QC-S",
            "parameters": quclassi.num_parameters,
            "test_accuracy": quclassi.score(data.x_test, data.y_test),
        },
        {
            "model": "QF-pNet-like",
            "parameters": qf_pnet.num_parameters,
            "test_accuracy": qf_pnet.score(data.x_test, data.y_test),
        },
        {
            "model": f"DNN-{dnn.num_parameters}P",
            "parameters": dnn.num_parameters,
            "test_accuracy": dnn.score(data.x_test, data.y_test),
        },
    ]
    print("\nBinary comparison (Fig. 9 at example scale)")
    print(format_table(rows))

    reduction = 100.0 * (1.0 - quclassi.num_parameters / dnn.num_parameters)
    print(f"\nQuClassi uses {reduction:.2f}% fewer parameters than the DNN baseline.")


if __name__ == "__main__":
    main()
