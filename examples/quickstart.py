"""Quickstart: train QuClassi on the Iris dataset in a dozen lines.

Run with::

    python examples/quickstart.py

This is the smallest end-to-end use of the library: load a dataset, run the
standard preprocessing pipeline (normalisation into [0, 1], the range the
quantum angle encoding requires), train a QC-S QuClassi model, and inspect
its accuracy and resource usage.
"""

from repro.core import ProgressLogger, QuClassi
from repro.datasets import load_iris, prepare_task


def main() -> None:
    # 1. Load and prepare the data: stratified train/test split + min-max
    #    normalisation fitted on the training split only.
    data = prepare_task(load_iris(), test_fraction=0.3, rng=0)

    # 2. Build the classifier.  Four features are packed into two qubits by
    #    the default dual-angle encoder, so one discriminator circuit uses
    #    1 ancilla + 2 trained + 2 data = 5 qubits and 4 parameters per class.
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=0)
    print(f"qubits per discriminator circuit: {model.num_qubits}")
    print(f"trainable parameters (all classes): {model.num_parameters}")

    # 3. Train.  Minibatches of 8 at learning rate 0.1 are the cheaper
    #    equivalent of the paper's per-sample updates at learning rate 0.01.
    model.fit(
        data.x_train,
        data.y_train,
        epochs=20,
        learning_rate=0.1,
        validation_data=(data.x_test, data.y_test),
        callbacks=[ProgressLogger(every=5)],
    )

    # 4. Evaluate.
    accuracy = model.score(data.x_test, data.y_test)
    print(f"\ntest accuracy: {accuracy:.4f}")
    print("class probabilities of the first test sample:", model.predict_proba(data.x_test[:1])[0])


if __name__ == "__main__":
    main()
