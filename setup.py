"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments without the ``wheel`` package (``pip install -e .`` falls back to
``setup.py develop`` there, and ``python setup.py develop`` works directly).
"""

from setuptools import setup

setup()
