"""Test-session bootstrap.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. running ``pytest`` straight from a fresh checkout in an offline
environment where ``pip install -e .`` cannot fetch build requirements).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
