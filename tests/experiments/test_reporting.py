"""Tests for plain-text experiment reporting."""

from repro.experiments.harness import ExperimentResult
from repro.experiments.reporting import (
    format_experiment,
    format_series,
    format_table,
    print_experiment,
)
from repro.experiments.harness import Series


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table([{"model": "QC-S", "accuracy": 0.9123}])
        assert "model" in text
        assert "QC-S" in text
        assert "0.9123" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_column_subset_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text and "a" not in text

    def test_alignment_consistent_widths(self):
        text = format_table([{"name": "x", "v": 1.0}, {"name": "longer-name", "v": 2.0}])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line}) == 1


class TestFormatSeries:
    def test_mentions_name_and_values(self):
        text = format_series(Series("loss", [1, 2, 3], [0.5, 0.25, 0.125]))
        assert text.startswith("loss")
        assert "0.1250" in text


class TestFormatExperiment:
    def test_combines_rows_series_and_metadata(self):
        result = ExperimentResult("fig9", "Binary comparison", metadata={"epochs": 5})
        result.add_row(task="1/5", accuracy=0.95)
        result.add_series("loss", [1, 2], [0.4, 0.2])
        text = format_experiment(result)
        assert "fig9" in text
        assert "1/5" in text
        assert "loss" in text
        assert "epochs=5" in text

    def test_print_experiment(self, capsys):
        result = ExperimentResult("figX", "demo")
        result.add_row(value=1.0)
        print_experiment(result)
        assert "figX" in capsys.readouterr().out
