"""Smoke tests for the figure-reproduction functions (small sizes).

The benchmarks run the paper-scale versions; these tests only assert that
each experiment produces a well-formed result with the expected structure,
using deliberately tiny workloads so the whole file stays fast.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation_encoding,
    ablation_gradient_rule,
    ablation_swap_test_shots,
    fig6a_multiclass_loss,
    fig6b_iris_accuracy,
    fig6c_learning_curves,
    fig8_state_evolution,
    fig9_binary_classification,
    fig10_multiclass_classification,
    fig12_hardware_mnist_accuracy,
    ionq_vs_cairo,
    parameter_reduction,
    prepare_mnist_task,
)


class TestDataPreparation:
    def test_prepare_mnist_task_shapes(self):
        data = prepare_mnist_task((3, 6), n_components=8, samples_per_digit=10, seed=0)
        assert data.num_features == 8
        assert data.num_classes == 2
        assert data.x_train.min() >= 0.0 and data.x_train.max() <= 1.0


class TestIrisFigures:
    def test_fig6a_structure(self):
        result = fig6a_multiclass_loss(epochs=2)
        assert result.experiment_id == "fig6a"
        assert len(result.series) == 4  # three classes + mean
        assert len(result.series[0].y) == 2

    def test_fig6b_rows(self):
        result = fig6b_iris_accuracy(architectures=("s",), dnn_budgets=(56,), epochs=2)
        assert len(result.rows) == 2
        models = result.column("model")
        assert "QC-S" in models
        assert any(str(m).startswith("DNN-") for m in models)

    def test_fig6c_series(self):
        result = fig6c_learning_curves(epochs=2, dnn_budgets=(28,))
        names = [series.name for series in result.series]
        assert any(name.startswith("QuClassi") for name in names)
        assert any(name.startswith("DNN-") for name in names)


class TestMnistFigures:
    def test_fig8_reports_rotation_and_fidelity_gain(self):
        result = fig8_state_evolution(epochs=3, samples_per_digit=15, seed=0)
        assert len(result.rows) == 2  # one row per trained qubit
        assert result.metadata["trained_mean_fidelity"] >= result.metadata["initial_mean_fidelity"] - 0.05

    def test_fig9_single_pair(self):
        result = fig9_binary_classification(
            pairs=((3, 6),), samples_per_digit=12, epochs=2, dnn_budgets=(306,)
        )
        row = result.rows[0]
        for column in ("QC-S", "QF-pNet-like", "TFQ-like", "DNN-306"):
            assert 0.0 <= row[column] <= 1.0

    def test_fig10_single_task(self):
        result = fig10_multiclass_classification(
            tasks=((0, 3, 6),), samples_per_digit=10, epochs=2, dnn_budgets=(306,)
        )
        assert result.rows[0]["num_classes"] == 3
        assert 0.0 <= result.rows[0]["QC-S"] <= 1.0


class TestHardwareExperiments:
    def test_fig12_structure(self):
        result = fig12_hardware_mnist_accuracy(
            pairs=((3, 4),), architectures=("s",), samples_per_digit=10, epochs=2, shots=256
        )
        row = result.rows[0]
        assert "QC-S" in row and "IBM-Q" in row and "TFQ-like" in row

    def test_ionq_vs_cairo_routing_gap(self):
        result = ionq_vs_cairo(samples_per_digit=10, epochs=2, shots=256)
        by_backend = {row["backend"]: row for row in result.rows}
        assert by_backend["ibmq_cairo"]["added_cx"] > by_backend["ionq_trapped_ion"]["added_cx"]
        assert by_backend["ideal_simulator"]["test_accuracy"] >= by_backend["ibmq_cairo"]["test_accuracy"] - 0.2


class TestAblationsAndTables:
    def test_parameter_reduction_rows(self):
        result = parameter_reduction(samples_per_digit=10, epochs=2)
        assert {row["setting"] for row in result.rows} == {"binary", "multiclass"}
        for row in result.rows:
            assert row["quclassi_params"] < row["dnn_params"]
            assert row["parameter_reduction_percent"] > 50.0

    def test_ablation_encoding_qubit_counts(self):
        result = ablation_encoding(epochs=2)
        by_encoding = {row["encoding"]: row for row in result.rows}
        assert by_encoding["dual_angle"]["qubits_per_state"] * 2 == by_encoding["single_angle"]["qubits_per_state"]

    def test_ablation_gradient_rule_rows(self):
        result = ablation_gradient_rule(epochs=2)
        assert {row["gradient_rule"] for row in result.rows} == {"epoch_scaled", "parameter_shift"}

    def test_ablation_shots_error_decreases(self):
        result = ablation_swap_test_shots(shots_grid=(64, 4096, None), seed=0)
        errors = [row["mean_absolute_error"] for row in result.rows]
        assert errors[0] > errors[-1]
        assert errors[-1] == pytest.approx(0.0, abs=1e-12)
