"""Tests for the experiment harness containers and helpers."""

import numpy as np
import pytest

from repro.datasets import load_iris, prepare_task
from repro.experiments.harness import (
    ExperimentResult,
    Series,
    accuracy_summary,
    timed,
    train_dnn_with_budget,
    train_quclassi,
)


def _square_cell(payload):
    return payload * payload


def _failing_cell(payload):
    if payload == 1:
        raise ValueError("bad cell")
    return payload


class TestSeries:
    def test_final_value(self):
        assert Series("loss", [1, 2, 3], [0.9, 0.5, 0.2]).final == 0.2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("loss", [1, 2], [0.9])


class TestExperimentResult:
    def test_add_and_lookup_series(self):
        result = ExperimentResult("figX", "demo")
        result.add_series("a", [1, 2], [0.1, 0.2])
        assert result.series_by_name("a").y == [0.1, 0.2]
        with pytest.raises(KeyError):
            result.series_by_name("missing")

    def test_rows_and_columns(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(task="1/5", accuracy=0.9)
        result.add_row(task="3/8", accuracy=0.8)
        assert result.column("task") == ["1/5", "3/8"]
        assert result.column("accuracy") == [0.9, 0.8]

    def test_missing_column_values_are_none(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(a=1)
        assert result.column("b") == [None]


class TestTimed:
    def test_returns_value_and_duration(self):
        run = timed(sum, [1, 2, 3])
        assert run.value == 6
        assert run.seconds >= 0.0

    def test_failure_preserves_exception_and_context(self):
        """A worker-raised error must re-raise intact, with its cause chain."""

        def explode():
            try:
                raise KeyError("inner")
            except KeyError as error:
                raise RuntimeError("outer") from error

        with pytest.raises(RuntimeError) as excinfo:
            timed(explode)
        assert isinstance(excinfo.value.__cause__, KeyError)
        assert any("explode" in note for note in excinfo.value.__notes__)

    def test_shard_error_keeps_cell_attribution(self):
        """Shard failures inside timed() still name the (class, cell) key."""
        from repro.experiments.harness import run_cells
        from repro.parallel import ShardError

        def bad_cell(payload):
            raise ValueError(f"bad payload {payload}")

        with pytest.raises(ShardError) as excinfo:
            timed(run_cells, bad_cell, ["x"], keys=[("cell", "x")])
        assert excinfo.value.shard_key == ("cell", "x")
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestRunCells:
    def test_results_in_payload_order(self):
        from repro.experiments.harness import run_cells

        assert run_cells(_square_cell, [3, 1, 2]) == [9, 1, 4]

    def test_executor_strategy_string(self):
        from repro.experiments.harness import run_cells

        assert run_cells(_square_cell, [3, 1, 2], executor="thread") == [9, 1, 4]

    def test_failing_cell_names_its_key(self):
        from repro.experiments.harness import run_cells
        from repro.parallel import ShardError

        with pytest.raises(ShardError) as excinfo:
            run_cells(_failing_cell, [0, 1], keys=[("site", "a"), ("site", "b")])
        assert excinfo.value.shard_key == ("site", "b")


class TestTrainingHelpers:
    @pytest.fixture(scope="class")
    def iris_data(self):
        return prepare_task(load_iris(), samples_per_class=15, rng=0)

    def test_train_quclassi_returns_fitted_model(self, iris_data):
        model = train_quclassi(iris_data, epochs=3, seed=0)
        assert model.history_ is not None
        summary = accuracy_summary(model, iris_data)
        assert 0.0 <= summary["test_accuracy"] <= 1.0

    def test_train_dnn_with_budget(self, iris_data):
        model = train_dnn_with_budget(iris_data, parameter_budget=56, epochs=10, seed=0)
        assert abs(model.num_parameters - 56) < 10
        assert 0.0 <= model.score(iris_data.x_test, iris_data.y_test) <= 1.0
