"""End-to-end integration tests across the full pipeline.

These exercise the complete path the paper describes — dataset → PCA →
normalisation → quantum encoding → SWAP-test training → softmax inference —
at sizes small enough to stay fast but large enough to demonstrate learning.
"""

import numpy as np
import pytest

from repro.baselines import QFpNetLikeClassifier, dnn_for_parameter_budget
from repro.core import EarlyStopping, QuClassi
from repro.datasets import generate_synthetic_mnist, load_iris, prepare_task
from repro.hardware import ibmq_rome, ionq
from repro.quantum import IdealBackend


class TestIrisEndToEnd:
    @pytest.fixture(scope="class")
    def iris_task(self):
        return prepare_task(load_iris(), rng=0)

    @pytest.fixture(scope="class")
    def trained_model(self, iris_task):
        model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=0)
        model.fit(iris_task.x_train, iris_task.y_train, epochs=15, learning_rate=0.1)
        return model

    def test_multiclass_accuracy_beats_chance_by_wide_margin(self, iris_task, trained_model):
        """Three-class Iris: the paper reports ~95%; anything well above 1/3 shows learning."""
        assert trained_model.score(iris_task.x_test, iris_task.y_test) > 0.80

    def test_loss_decreases_monotonically_on_average(self, trained_model):
        losses = trained_model.history_.losses
        assert losses[-1] < losses[0]
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_setosa_is_near_perfectly_separated(self, iris_task, trained_model):
        """Setosa is linearly separable; its discriminator should isolate it."""
        predictions = trained_model.predict(iris_task.x_test)
        setosa_mask = iris_task.y_test == 0
        assert np.mean(predictions[setosa_mask] == 0) >= 0.9

    def test_model_roundtrip_through_disk(self, iris_task, trained_model, tmp_path):
        path = tmp_path / "iris_model.json"
        trained_model.save(str(path))
        restored = QuClassi.load(str(path))
        np.testing.assert_array_equal(
            restored.predict(iris_task.x_test), trained_model.predict(iris_task.x_test)
        )

    def test_quclassi_uses_far_fewer_parameters_than_comparable_dnn(self, iris_task, trained_model):
        dnn = dnn_for_parameter_budget(4, 3, 112, seed=0)
        dnn.fit(iris_task.x_train, iris_task.y_train, epochs=30, learning_rate=0.1)
        assert trained_model.num_parameters < dnn.num_parameters / 3


class TestSyntheticMnistEndToEnd:
    @pytest.fixture(scope="class")
    def binary_task(self):
        dataset = generate_synthetic_mnist(digits=(3, 6), samples_per_digit=60, rng=1)
        return prepare_task(dataset, classes=(3, 6), n_components=16, rng=1)

    def test_binary_classification_beats_chance(self, binary_task):
        model = QuClassi(num_features=16, num_classes=2, architecture="s", seed=0)
        model.fit(binary_task.x_train, binary_task.y_train, epochs=12, learning_rate=0.1)
        assert model.score(binary_task.x_test, binary_task.y_test) > 0.75

    def test_swap_test_estimator_agrees_with_analytic_on_trained_model(self, binary_task):
        model = QuClassi(num_features=16, num_classes=2, architecture="s", seed=0)
        model.fit(binary_task.x_train, binary_task.y_train, epochs=4, learning_rate=0.1)
        from repro.core import SwapTestFidelityEstimator

        sampled = SwapTestFidelityEstimator(model.builder, backend=IdealBackend(seed=0), shots=None)
        analytic_fid = model.estimator.fidelities(model.parameters_[0], binary_task.x_test[:5])
        circuit_fid = sampled.fidelities(model.parameters_[0], binary_task.x_test[:5])
        np.testing.assert_allclose(analytic_fid, circuit_fid, atol=1e-9)

    def test_quclassi_is_competitive_with_qfpnet_like(self, binary_task):
        quclassi = QuClassi(num_features=16, num_classes=2, architecture="s", seed=0)
        quclassi.fit(binary_task.x_train, binary_task.y_train, epochs=10, learning_rate=0.1)
        qf = QFpNetLikeClassifier(num_features=16, num_classes=2, seed=0)
        qf.fit(binary_task.x_train, binary_task.y_train, epochs=10)
        quclassi_accuracy = quclassi.score(binary_task.x_test, binary_task.y_test)
        qf_accuracy = qf.score(binary_task.x_test, binary_task.y_test)
        assert quclassi_accuracy >= qf_accuracy - 0.15

    def test_early_stopping_callback_halts_training(self, binary_task):
        model = QuClassi(num_features=16, num_classes=2, architecture="s", seed=0)
        history = model.fit(
            binary_task.x_train,
            binary_task.y_train,
            epochs=30,
            learning_rate=1e-6,  # effectively no progress -> early stop triggers
            callbacks=[EarlyStopping(patience=2, min_delta=1e-3)],
        )
        assert len(history.records) < 30


class TestHardwareEndToEnd:
    def test_noisy_inference_degrades_but_not_to_chance(self):
        """Trained simulator model evaluated through noisy hardware (Fig. 12 pattern)."""
        dataset = generate_synthetic_mnist(digits=(3, 4), samples_per_digit=25, rng=2)
        task = prepare_task(dataset, classes=(3, 4), n_components=4, rng=2)
        model = QuClassi(num_features=4, num_classes=2, architecture="s", seed=0)
        model.fit(task.x_train, task.y_train, epochs=10, learning_rate=0.1)
        ideal_accuracy = model.score(task.x_test, task.y_test)

        from repro.core import SwapTestFidelityEstimator

        model.estimator = SwapTestFidelityEstimator(model.builder, backend=ibmq_rome(seed=0), shots=4096)
        hardware_accuracy = model.score(task.x_test, task.y_test)
        assert hardware_accuracy > 0.5
        assert hardware_accuracy <= ideal_accuracy + 0.1

    def test_training_on_noisy_backend_reduces_loss(self):
        """Small-scale version of the paper's Fig. 11 hardware training run."""
        task = prepare_task(load_iris(), samples_per_class=4, test_fraction=0.25, rng=0)
        model = QuClassi(
            num_features=4,
            num_classes=3,
            architecture="s",
            estimator="swap_test",
            backend=ionq(seed=0),
            shots=2048,
            seed=0,
        )
        history = model.fit(task.x_train, task.y_train, epochs=2, learning_rate=0.1, batch_size=None)
        assert history.losses[-1] <= history.losses[0] + 0.05
