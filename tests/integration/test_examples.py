"""Integration tests that exercise the example scripts' core flows.

The examples are plain scripts; rather than spawning subprocesses (slow and
noisy in CI), these tests import their helper functions or re-run their key
steps at reduced size to guarantee the documented workflows keep working.
"""

import importlib.util
import pathlib
import sys

import numpy as np
import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    """Import an example script as a module without executing ``main()``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleFiles:
    def test_all_examples_present(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "iris_multiclass.py", "mnist_binary.py", "noisy_hardware.py"} <= names

    def test_examples_import_cleanly(self):
        for name in ("quickstart.py", "iris_multiclass.py", "mnist_binary.py", "noisy_hardware.py"):
            module = load_example(name)
            assert hasattr(module, "main")


class TestIrisExampleHelpers:
    def test_variant_and_baseline_training_helpers(self):
        from repro.datasets import load_iris, prepare_task

        module = load_example("iris_multiclass.py")
        data = prepare_task(load_iris(), samples_per_class=10, rng=0)
        quantum = module.train_quclassi_variants(data, epochs=2)
        classical = module.train_dnn_baselines(data, budgets=(56,), epochs=5)
        assert set(quantum) == {"QC-S", "QC-SD", "QC-SDE"}
        for model in quantum.values():
            assert 0.0 <= model.score(data.x_test, data.y_test) <= 1.0
        assert len(classical) == 1


class TestQuickstartFlow:
    def test_quickstart_workflow_small(self):
        """The quickstart's exact call sequence at reduced size."""
        from repro.core import QuClassi
        from repro.datasets import load_iris, prepare_task

        data = prepare_task(load_iris(), samples_per_class=12, rng=0)
        model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=0)
        model.fit(data.x_train, data.y_train, epochs=5, learning_rate=0.1)
        accuracy = model.score(data.x_test, data.y_test)
        assert accuracy > 0.5
        probabilities = model.predict_proba(data.x_test[:1])[0]
        assert probabilities.shape == (3,)
        assert np.isclose(probabilities.sum(), 1.0)
