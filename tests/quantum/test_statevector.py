"""Tests for the statevector engine."""

import math

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum import gates
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector


class TestConstruction:
    def test_ground_state(self):
        sv = Statevector(2)
        np.testing.assert_allclose(sv.data, [1, 0, 0, 0])

    def test_from_amplitudes(self):
        sv = Statevector(np.array([1, 1]) / math.sqrt(2))
        assert sv.num_qubits == 1

    def test_rejects_unnormalised_without_flag(self):
        with pytest.raises(SimulationError):
            Statevector(np.array([1.0, 1.0]))

    def test_normalize_flag(self):
        sv = Statevector(np.array([3.0, 4.0]), normalize=True)
        assert sv.norm() == pytest.approx(1.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            Statevector(np.array([1.0, 0.0, 0.0]))

    def test_rejects_zero_vector(self):
        with pytest.raises(SimulationError):
            Statevector(np.zeros(4))

    def test_from_label(self):
        sv = Statevector.from_label("10")
        assert sv.probabilities()[2] == pytest.approx(1.0)

    def test_from_label_invalid(self):
        with pytest.raises(SimulationError):
            Statevector.from_label("1a")


class TestBitOrdering:
    def test_qubit0_is_most_significant(self):
        sv = Statevector(2)
        sv.apply_matrix(gates.PAULI_X, (0,))
        # Qubit 0 set -> index 2 (binary "10").
        assert sv.probabilities()[2] == pytest.approx(1.0)

    def test_qubit1_is_least_significant(self):
        sv = Statevector(2)
        sv.apply_matrix(gates.PAULI_X, (1,))
        assert sv.probabilities()[1] == pytest.approx(1.0)


class TestEvolution:
    def test_hadamard_superposition(self):
        sv = Statevector(1)
        sv.apply_matrix(gates.HADAMARD, (0,))
        np.testing.assert_allclose(sv.probabilities(), [0.5, 0.5], atol=1e-12)

    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        sv = Statevector(2).evolve(qc)
        np.testing.assert_allclose(sv.probabilities(), [0.5, 0, 0, 0.5], atol=1e-12)

    def test_norm_preserved_by_long_circuit(self):
        rng = np.random.default_rng(0)
        qc = QuantumCircuit(3)
        for _ in range(30):
            qubit = int(rng.integers(3))
            qc.ry(rng.uniform(0, np.pi), qubit)
            other = int((qubit + 1 + rng.integers(2)) % 3)
            qc.cx(qubit, other)
        sv = Statevector(3).evolve(qc)
        assert sv.norm() == pytest.approx(1.0)

    def test_gate_on_out_of_range_qubit(self):
        with pytest.raises(SimulationError):
            Statevector(1).apply_matrix(gates.PAULI_X, (1,))

    def test_matrix_shape_mismatch(self):
        with pytest.raises(SimulationError):
            Statevector(2).apply_matrix(np.eye(4), (0,))

    def test_evolve_rejects_measurement(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(SimulationError):
            Statevector(1).evolve(qc)

    def test_two_qubit_gate_order_matters(self):
        # CNOT with control qubit 0 vs control qubit 1 behave differently.
        sv_a = Statevector(2)
        sv_a.apply_matrix(gates.PAULI_X, (0,))
        sv_a.apply_matrix(gates.CNOT, (0, 1))
        assert sv_a.probabilities()[3] == pytest.approx(1.0)

        sv_b = Statevector(2)
        sv_b.apply_matrix(gates.PAULI_X, (0,))
        sv_b.apply_matrix(gates.CNOT, (1, 0))
        assert sv_b.probabilities()[2] == pytest.approx(1.0)


class TestProbabilitiesAndExpectations:
    def test_marginal_probabilities(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        sv = Statevector(2).evolve(qc)
        np.testing.assert_allclose(sv.probabilities([0]), [0.5, 0.5], atol=1e-12)
        np.testing.assert_allclose(sv.probabilities([1]), [1.0, 0.0], atol=1e-12)

    def test_marginal_respects_requested_order(self):
        sv = Statevector(2)
        sv.apply_matrix(gates.PAULI_X, (1,))  # state |01>
        # Order (1, 0): qubit 1 first -> outcome "10" should have probability 1.
        probs = sv.probabilities([1, 0])
        assert probs[2] == pytest.approx(1.0)

    def test_expectation_z(self):
        sv = Statevector(1)
        assert sv.expectation_z(0) == pytest.approx(1.0)
        sv.apply_matrix(gates.PAULI_X, (0,))
        assert sv.expectation_z(0) == pytest.approx(-1.0)

    def test_expectation_z_encoding_map(self):
        x = 0.42
        sv = Statevector(1)
        sv.apply_matrix(gates.ry(2 * math.asin(math.sqrt(x))), (0,))
        assert sv.probabilities([0])[1] == pytest.approx(x)


class TestMeasurementAndCollapse:
    def test_collapse_renormalises(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        sv = Statevector(2).evolve(qc)
        sv.collapse(0, 1)
        assert sv.probabilities()[2] == pytest.approx(1.0)

    def test_collapse_on_impossible_outcome(self):
        with pytest.raises(SimulationError):
            Statevector(1).collapse(0, 1)

    def test_measure_is_deterministic_on_basis_state(self):
        sv = Statevector(1)
        sv.apply_matrix(gates.PAULI_X, (0,))
        outcome, _ = sv.measure(0, rng=0)
        assert outcome == 1

    def test_reset_returns_to_zero(self):
        sv = Statevector(1)
        sv.apply_matrix(gates.PAULI_X, (0,))
        sv.reset(0, rng=0)
        assert sv.probabilities()[0] == pytest.approx(1.0)

    def test_sample_counts_total(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        sv = Statevector(1).evolve(qc)
        counts = sv.sample_counts(1000, rng=0)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"0", "1"}

    def test_sample_counts_requires_positive_shots(self):
        with pytest.raises(SimulationError):
            Statevector(1).sample_counts(0)


class TestInnerProductsAndFidelity:
    def test_fidelity_of_identical_states(self):
        sv = Statevector(2)
        assert sv.fidelity(sv.copy()) == pytest.approx(1.0)

    def test_fidelity_of_orthogonal_states(self):
        a = Statevector.from_label("0")
        b = Statevector.from_label("1")
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_fidelity_matches_overlap_formula(self):
        theta = 0.8
        a = Statevector(1)
        b = Statevector(1)
        b.apply_matrix(gates.ry(theta), (0,))
        assert a.fidelity(b) == pytest.approx(math.cos(theta / 2) ** 2)

    def test_inner_width_mismatch(self):
        with pytest.raises(SimulationError):
            Statevector(1).inner(Statevector(2))

    def test_tensor_product(self):
        a = Statevector.from_label("1")
        b = Statevector.from_label("0")
        joint = a.tensor(b)
        assert joint.num_qubits == 2
        assert joint.probabilities()[2] == pytest.approx(1.0)

    def test_equiv_up_to_global_phase(self):
        a = Statevector(1)
        b = Statevector(np.array([np.exp(1j * 0.3), 0.0]))
        assert a.equiv(b)


class TestMarginalValidation:
    """Regression: duplicate qubits silently produced wrong-shaped marginals."""

    def test_duplicate_qubits_rejected(self):
        sv = Statevector(2).evolve(QuantumCircuit(2).h(0))
        with pytest.raises(SimulationError, match="duplicate"):
            sv.probabilities([0, 0])

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(SimulationError):
            Statevector(2).probabilities([2])

    def test_negative_qubit_rejected(self):
        with pytest.raises(SimulationError):
            Statevector(2).probabilities([-1])
