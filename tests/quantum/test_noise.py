"""Tests for noise channels and noise models."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    is_valid_channel,
    phase_damping_kraus,
    phase_flip_kraus,
    thermal_relaxation_kraus,
)


class TestKrausCompleteness:
    @pytest.mark.parametrize("probability", [0.0, 0.1, 0.5, 1.0])
    def test_depolarizing_1q(self, probability):
        assert is_valid_channel(depolarizing_kraus(probability, 1))

    @pytest.mark.parametrize("probability", [0.0, 0.3, 1.0])
    def test_depolarizing_2q(self, probability):
        assert is_valid_channel(depolarizing_kraus(probability, 2))

    @pytest.mark.parametrize("gamma", [0.0, 0.2, 0.9, 1.0])
    def test_amplitude_damping(self, gamma):
        assert is_valid_channel(amplitude_damping_kraus(gamma))

    @pytest.mark.parametrize("gamma", [0.0, 0.4, 1.0])
    def test_phase_damping(self, gamma):
        assert is_valid_channel(phase_damping_kraus(gamma))

    def test_bit_and_phase_flip(self):
        assert is_valid_channel(bit_flip_kraus(0.25))
        assert is_valid_channel(phase_flip_kraus(0.25))

    def test_thermal_relaxation(self):
        assert is_valid_channel(thermal_relaxation_kraus(t1=50.0, t2=60.0, gate_time=0.1))

    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError):
            depolarizing_kraus(1.5)
        with pytest.raises(SimulationError):
            amplitude_damping_kraus(-0.1)

    def test_unphysical_relaxation_rejected(self):
        with pytest.raises(SimulationError):
            thermal_relaxation_kraus(t1=10.0, t2=50.0, gate_time=0.1)

    def test_is_valid_channel_rejects_incomplete(self):
        assert not is_valid_channel([np.eye(2) * 0.5])

    def test_is_valid_channel_rejects_empty(self):
        assert not is_valid_channel([])


class TestReadoutError:
    def test_confusion_matrix_columns_sum_to_one(self):
        error = ReadoutError(0.03, 0.07)
        np.testing.assert_allclose(error.confusion_matrix().sum(axis=0), [1.0, 1.0])

    def test_apply_never_flips_with_zero_probability(self):
        error = ReadoutError(0.0, 0.0)
        assert error.apply(0, rng=0) == 0
        assert error.apply(1, rng=0) == 1

    def test_apply_always_flips_with_unit_probability(self):
        error = ReadoutError(1.0, 1.0)
        assert error.apply(0, rng=0) == 1
        assert error.apply(1, rng=0) == 0

    def test_invalid_probability(self):
        with pytest.raises(SimulationError):
            ReadoutError(1.5, 0.0)


class TestNoiseModel:
    def test_ideal_model_has_no_errors(self):
        model = NoiseModel.ideal()
        assert model.is_ideal
        assert model.gate_channels("cx", 2) == []
        assert model.readout_error(0) is None

    def test_from_error_rates_attaches_channels(self):
        model = NoiseModel.from_error_rates(0.001, 0.01, readout_error=0.02)
        assert not model.is_ideal
        assert len(model.gate_channels("ry", 1)) == 1
        assert len(model.gate_channels("cx", 2)) == 1
        assert model.readout_error(3) is not None

    def test_gate_specific_error(self):
        model = NoiseModel()
        model.add_gate_error("cx", depolarizing_kraus(0.02, 2))
        assert len(model.gate_channels("cx", 2)) == 1
        assert model.gate_channels("cz", 2) == []

    def test_per_qubit_readout_error_overrides_default(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.01, 0.01))
        model.add_readout_error(ReadoutError(0.2, 0.2), qubit=3)
        assert model.readout_error(0).prob_flip_0_to_1 == pytest.approx(0.01)
        assert model.readout_error(3).prob_flip_0_to_1 == pytest.approx(0.2)

    def test_invalid_kraus_rejected(self):
        model = NoiseModel()
        with pytest.raises(SimulationError):
            model.add_gate_error("cx", [np.eye(4) * 0.3])


class TestFromErrorRatesValidation:
    """Invalid summary rates must raise, not silently build an ideal model."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"single_qubit_error": -0.001, "two_qubit_error": 0.01},
            {"single_qubit_error": 0.001, "two_qubit_error": -0.01},
            {"single_qubit_error": 0.001, "two_qubit_error": 0.01, "readout_error": -0.02},
            {"single_qubit_error": 1.5, "two_qubit_error": 0.01},
            {"single_qubit_error": 0.001, "two_qubit_error": 0.01, "readout_error": 2.0},
        ],
    )
    def test_out_of_range_rates_raise(self, kwargs):
        with pytest.raises(SimulationError):
            NoiseModel.from_error_rates(**kwargs)

    @pytest.mark.parametrize(
        "relaxation",
        [
            {"t1": 50.0},
            {"t2": 60.0},
            {"t1": 50.0, "t2": 60.0},  # relaxation times but no duration
            {"gate_time": 0.1},
            {"t1": 50.0, "gate_time": 0.1},
        ],
    )
    def test_partial_relaxation_raises(self, relaxation):
        with pytest.raises(SimulationError):
            NoiseModel.from_error_rates(0.001, 0.01, **relaxation)

    def test_negative_gate_time_raises(self):
        with pytest.raises(SimulationError):
            NoiseModel.from_error_rates(0.001, 0.01, t1=50.0, t2=60.0, gate_time=-0.1)

    def test_full_relaxation_attaches_a_second_single_qubit_channel(self):
        model = NoiseModel.from_error_rates(
            0.001, 0.01, t1=50.0, t2=60.0, gate_time=0.1
        )
        assert len(model.gate_channels("ry", 1)) == 2

    def test_zero_rates_without_relaxation_build_an_ideal_model(self):
        assert NoiseModel.from_error_rates(0.0, 0.0).is_ideal


class TestChannelRegistrationGuard:
    """``add_*`` runs the static verifier's CPTP checks at mutation time."""

    def test_non_cptp_gate_error_raises_noise_error_naming_the_gate(self):
        from repro.exceptions import NoiseError

        model = NoiseModel()
        incomplete = [0.5 * np.eye(2, dtype=complex)]
        with pytest.raises(NoiseError, match="gate error for 'ry'"):
            model.add_gate_error("ry", incomplete)
        assert model.version == 0  # rejected before the mutation counter bumps
        assert model.gate_channels("ry", 1) == []

    def test_non_cptp_all_qubit_error_raises_noise_error_naming_the_width(self):
        from repro.exceptions import NoiseError

        model = NoiseModel()
        with pytest.raises(NoiseError, match="all-qubit error on 2-qubit"):
            model.add_all_qubit_error([0.5 * np.eye(4, dtype=complex)], 2)
        assert model.version == 0

    def test_mismatched_kraus_dimensions_raise_noise_error(self):
        from repro.exceptions import NoiseError

        model = NoiseModel()
        with pytest.raises(NoiseError, match="dimension"):
            model.add_gate_error("cx", [np.eye(2), np.eye(4)])

    def test_noise_error_is_a_simulation_error(self):
        from repro.exceptions import NoiseError

        model = NoiseModel()
        with pytest.raises(SimulationError):
            model.add_gate_error("ry", [0.5 * np.eye(2)])
        assert issubclass(NoiseError, SimulationError)

    def test_valid_channel_still_registers_and_bumps_version(self):
        model = NoiseModel()
        model.add_gate_error("ry", depolarizing_kraus(0.05, 1))
        assert model.version == 1
        assert len(model.gate_channels("ry", 1)) == 1
