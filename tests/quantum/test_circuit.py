"""Tests for the QuantumCircuit IR."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Parameter
from repro.quantum.register import ClassicalRegister, QuantumRegister
from repro.quantum.statevector import Statevector


class TestConstruction:
    def test_from_int(self):
        qc = QuantumCircuit(3, 2)
        assert qc.num_qubits == 3
        assert qc.num_clbits == 2

    def test_from_registers(self):
        ancilla = QuantumRegister(1, "ancilla")
        data = QuantumRegister(2, "data")
        qc = QuantumCircuit([ancilla, data], ClassicalRegister(1, "c"))
        assert qc.num_qubits == 3
        assert qc.qregs[1].indices == (1, 2)

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_no_clbits_allowed(self):
        assert QuantumCircuit(2).num_clbits == 0


class TestAppendingGates:
    def test_gate_methods_chain(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).ry(0.3, 1)
        assert len(qc) == 3

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).h(2)

    def test_out_of_range_clbit_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2, 1).measure(0, 1)

    def test_measure_all_requires_enough_clbits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(3, 2).measure_all()

    def test_measure_all(self):
        qc = QuantumCircuit(2, 2).measure_all()
        assert qc.count_ops()["measure"] == 2

    def test_every_gate_helper_appends(self):
        qc = QuantumCircuit(3, 1)
        qc.i(0); qc.x(0); qc.y(0); qc.z(0); qc.h(0); qc.s(0); qc.t(0)
        qc.rx(0.1, 0); qc.ry(0.1, 0); qc.rz(0.1, 0); qc.r(0.1, 0.2, 0); qc.u3(0.1, 0.2, 0.3, 0)
        qc.cx(0, 1); qc.cz(0, 1); qc.swap(0, 1)
        qc.rxx(0.1, 0, 1); qc.ryy(0.1, 0, 1); qc.rzz(0.1, 0, 1)
        qc.crx(0.1, 0, 1); qc.cry(0.1, 0, 1); qc.crz(0.1, 0, 1)
        qc.cswap(0, 1, 2); qc.reset(2); qc.barrier(); qc.measure(0, 0)
        assert qc.size() == len(qc) - 1  # all but the barrier


class TestParameters:
    def test_parameters_in_first_appearance_order(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(1)
        qc.ry(b, 0).rz(a, 0).ry(b, 0)
        assert qc.parameters == (b, a)
        assert qc.num_parameters == 2

    def test_bind_parameters_partial(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(1)
        qc.ry(a, 0).rz(b, 0)
        bound = qc.bind_parameters({a: 0.5})
        assert bound.parameters == (b,)
        # The original circuit is untouched.
        assert qc.parameters == (a, b)

    def test_assign_parameters_from_sequence(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(1)
        qc.ry(a, 0).rz(b, 0)
        bound = qc.assign_parameters([0.1, 0.2])
        assert bound.num_parameters == 0

    def test_assign_parameters_wrong_length(self):
        qc = QuantumCircuit(1)
        qc.ry(Parameter("a"), 0)
        with pytest.raises(CircuitError):
            qc.assign_parameters([0.1, 0.2])


class TestCompose:
    def test_compose_identity_mapping(self):
        base = QuantumCircuit(2)
        base.h(0)
        other = QuantumCircuit(2)
        other.cx(0, 1)
        combined = base.compose(other)
        assert [i.name for i in combined.instructions] == ["h", "cx"]

    def test_compose_with_mapping(self):
        base = QuantumCircuit(3)
        other = QuantumCircuit(2)
        other.cx(0, 1)
        combined = base.compose(other, qubits=[2, 0])
        assert combined.instructions[0].qubits == (2, 0)

    def test_compose_mapping_length_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(3).compose(QuantumCircuit(2), qubits=[0])

    def test_compose_out_of_range_mapping(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).compose(QuantumCircuit(2), qubits=[0, 5])


class TestInverse:
    def test_inverse_reverses_rotation(self):
        qc = QuantumCircuit(1)
        qc.ry(0.4, 0).rz(-0.2, 0)
        roundtrip = qc.compose(qc.inverse())
        state = Statevector(1).evolve(roundtrip)
        assert abs(state.data[0]) == pytest.approx(1.0)

    def test_inverse_of_parameterised_circuit_raises(self):
        qc = QuantumCircuit(1)
        qc.ry(Parameter("t"), 0)
        with pytest.raises(CircuitError):
            qc.inverse()

    def test_inverse_of_measurement_raises(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(CircuitError):
            qc.inverse()


class TestAnalysis:
    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        assert qc.depth() == 1

    def test_depth_serial_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).h(1)
        assert qc.depth() == 3

    def test_barrier_not_counted_in_depth(self):
        qc = QuantumCircuit(1)
        qc.h(0).barrier().h(0)
        assert qc.depth() == 2

    def test_count_ops(self):
        qc = QuantumCircuit(2, 1)
        qc.h(0).h(1).cx(0, 1).measure(0, 0)
        assert qc.count_ops() == {"h": 2, "cx": 1, "measure": 1}

    def test_two_qubit_gate_count(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cswap(0, 1, 2)
        assert qc.two_qubit_gate_count() == 2

    def test_measured_qubits_order(self):
        qc = QuantumCircuit(3, 3)
        qc.measure(2, 0).measure(0, 1)
        assert qc.measured_qubits() == (2, 0)

    def test_has_measurements(self):
        assert not QuantumCircuit(1).has_measurements()
        assert QuantumCircuit(1, 1).measure(0, 0).has_measurements()

    def test_remove_final_measurements(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        stripped = qc.remove_final_measurements()
        assert not stripped.has_measurements()
        assert qc.has_measurements()  # original untouched

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        duplicate = qc.copy()
        duplicate.x(0)
        assert len(qc) == 1
        assert len(duplicate) == 2

    def test_text_diagram_mentions_gates(self):
        qc = QuantumCircuit(2, 1, name="demo")
        qc.h(0).cry(Parameter("theta"), 0, 1).measure(0, 0)
        text = qc.to_text_diagram()
        assert "demo" in text
        assert "cry(theta)" in text
        assert "measure" in text
