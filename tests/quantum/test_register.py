"""Tests for quantum and classical registers."""

import pytest

from repro.exceptions import CircuitError
from repro.quantum.register import ClassicalRegister, QuantumRegister


class TestQuantumRegister:
    def test_indices_with_offset(self):
        reg = QuantumRegister(3, "data", offset=2)
        assert reg.indices == (2, 3, 4)

    def test_getitem(self):
        reg = QuantumRegister(3, "q", offset=1)
        assert reg[0] == 1
        assert reg[2] == 3

    def test_negative_index(self):
        reg = QuantumRegister(3, "q", offset=1)
        assert reg[-1] == 3

    def test_out_of_range_raises(self):
        with pytest.raises(CircuitError):
            QuantumRegister(2, "q")[2]

    def test_len_and_iter(self):
        reg = QuantumRegister(4, "q", offset=5)
        assert len(reg) == 4
        assert list(reg) == [5, 6, 7, 8]

    def test_zero_size_rejected(self):
        with pytest.raises(CircuitError):
            QuantumRegister(0, "q")

    def test_negative_offset_rejected(self):
        with pytest.raises(CircuitError):
            QuantumRegister(2, "q", offset=-1)

    def test_shifted(self):
        assert QuantumRegister(2, "q").shifted(7).indices == (7, 8)


class TestClassicalRegister:
    def test_indices(self):
        assert ClassicalRegister(2, "c", offset=1).indices == (1, 2)

    def test_getitem(self):
        assert ClassicalRegister(3, "c")[1] == 1

    def test_out_of_range_raises(self):
        with pytest.raises(CircuitError):
            ClassicalRegister(1, "c")[1]

    def test_zero_size_rejected(self):
        with pytest.raises(CircuitError):
            ClassicalRegister(0, "c")

    def test_shifted(self):
        assert ClassicalRegister(2, "c").shifted(3).indices == (3, 4)
