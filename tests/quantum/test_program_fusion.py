"""Tests for the certified plan-time fusion pass (:meth:`SweepProgram.optimized`).

The headline guarantee: with fusion enabled, both engines produce the
same numbers as the unfused program — probabilities to float tolerance
and *sampled counts bit-identically* (the stacked multinomial consumes
the RNG the same way either side).  Randomised circuits exercise the
legality oracle's decisions; deterministic tests pin the opt-in knobs
(``REPRO_OPTIMIZE_PROGRAMS``, the simulators' ``optimize_programs``
argument, and the transpile template's noise-keyed cache).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.calibration import get_calibration
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.program import (
    DensitySuperoperatorEngine,
    OPTIMIZE_PROGRAMS_ENV,
    StatevectorEngine,
    SweepProgram,
    optimization_enabled,
    resolve_optimization,
)
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.transpiler import TranspileCache
from repro.utils.rng import ensure_rng

NUM_QUBITS = 3

angles = st.floats(
    min_value=-math.pi, max_value=math.pi, allow_nan=False, allow_infinity=False
)
qubit = st.integers(min_value=0, max_value=NUM_QUBITS - 1)
fixed_gate = st.tuples(st.sampled_from(["h", "x", "t", "s"]), qubit)
rotation = st.tuples(st.sampled_from(["ry", "rz"]), qubit, angles)
cx_pair = st.tuples(
    st.just("cx"), qubit, qubit
).filter(lambda spec: spec[1] != spec[2])
gate_spec = st.one_of(fixed_gate, rotation, cx_pair)


def build_circuit(specs) -> QuantumCircuit:
    qc = QuantumCircuit(NUM_QUBITS, NUM_QUBITS, name="random")
    for spec in specs:
        if spec[0] == "cx":
            qc.cx(spec[1], spec[2])
        elif spec[0] in ("ry", "rz"):
            getattr(qc, spec[0])(spec[2], spec[1])
        else:
            getattr(qc, spec[0])(spec[1])
    qc.measure_all()
    return qc


@pytest.fixture(scope="module")
def london():
    return get_calibration("ibmq_london").noise_model()


class TestFusedEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(specs=st.lists(gate_spec, min_size=1, max_size=10))
    def test_statevector_probabilities_match(self, specs):
        circuit = build_circuit(specs)
        source = SweepProgram.compile(circuit, bind_floats=True)
        optimized = source.optimized()
        bindings = np.array([source.binding_row(circuit)]).reshape(1, -1)
        engine = StatevectorEngine()
        np.testing.assert_allclose(
            optimized.execute(bindings, engine),
            source.execute(bindings, engine),
            atol=1e-10,
        )

    @settings(max_examples=10, deadline=None)
    @given(specs=st.lists(gate_spec, min_size=1, max_size=8))
    def test_density_probabilities_match_under_noise(self, specs):
        noise = get_calibration("ibmq_london").noise_model()
        circuit = build_circuit(specs)
        source = SweepProgram.compile(circuit, bind_floats=True)
        optimized = source.optimized(noise_model=noise)
        bindings = np.array([source.binding_row(circuit)]).reshape(1, -1)
        np.testing.assert_allclose(
            optimized.execute(bindings, DensitySuperoperatorEngine(noise)),
            source.execute(bindings, DensitySuperoperatorEngine(noise)),
            atol=1e-10,
        )

    @settings(max_examples=10, deadline=None)
    @given(specs=st.lists(gate_spec, min_size=1, max_size=8))
    def test_source_steps_flatten_back_to_the_source(self, specs):
        circuit = build_circuit(specs)
        source = SweepProgram.compile(circuit, bind_floats=True)
        optimized = source.optimized()
        flattened = list(optimized.source_steps())
        assert [s.name for s in flattened] == [s.name for s in source.steps]
        assert [s.qubits for s in flattened] == [s.qubits for s in source.steps]
        assert [s.slots for s in flattened] == [s.slots for s in source.steps]


def sweep_circuit(angle_row, name="sweep") -> QuantumCircuit:
    qc = QuantumCircuit(3, 1, name=name)
    qc.h(0)
    qc.cx(0, 1)
    qc.t(1)
    qc.ry(angle_row[0], 1).rz(angle_row[1], 1)
    qc.cx(1, 2)
    qc.s(2)
    qc.ry(angle_row[2], 2)
    qc.h(0)
    qc.measure(0, 0)
    return qc


def random_sweep(count, seed):
    rng = np.random.default_rng(seed)
    return [sweep_circuit(rng.uniform(0, np.pi, 3)) for _ in range(count)]


class TestSeedBitIdentity:
    """Sampled counts must be bit-identical with fusion on vs off."""

    def test_statevector_counts_are_bit_identical(self):
        circuits = random_sweep(6, seed=3)
        fused = StatevectorSimulator(seed=11, optimize_programs=True).run_batch(
            circuits, shots=400
        )
        plain = StatevectorSimulator(seed=11, optimize_programs=False).run_batch(
            circuits, shots=400
        )
        assert [r.counts.data for r in fused] == [r.counts.data for r in plain]
        for lhs, rhs in zip(fused, plain):
            for key, value in rhs.probabilities.items():
                assert lhs.probabilities[key] == pytest.approx(value, abs=1e-10)

    def test_density_counts_are_bit_identical(self, london):
        circuits = random_sweep(5, seed=4)
        fused = DensityMatrixSimulator(
            noise_model=london, seed=13, optimize_programs=True
        ).run_batch(circuits, shots=300)
        plain = DensityMatrixSimulator(
            noise_model=london, seed=13, optimize_programs=False
        ).run_batch(circuits, shots=300)
        assert [r.counts.data for r in fused] == [r.counts.data for r in plain]

    def test_fusion_actually_fires_on_the_sweep_shape(self, london):
        circuit = sweep_circuit([0.3, 0.7, 0.4])
        source = SweepProgram.compile(circuit, bind_floats=True)
        ideal = source.optimized()
        noisy = source.optimized(noise_model=london)
        assert len(ideal.steps) < len(source.steps)
        assert len(noisy.steps) < len(source.steps)
        assert any(step.fused_from for step in ideal.steps)
        assert any(step.fused_from for step in noisy.steps)
        # Noise commutation admits fewer runs than the ideal oracle.
        assert len(noisy.steps) >= len(ideal.steps)

    def test_fused_steps_never_absorb_bind_sites(self, london):
        circuit = sweep_circuit([0.3, 0.7, 0.4])
        program = SweepProgram.compile(circuit, bind_floats=True).optimized(
            noise_model=london
        )
        for step in program.steps:
            if step.fused_from:
                assert step.is_fixed
                assert step.slots == ()
                assert all(source.is_fixed for source in step.fused_from)

    def test_binding_row_works_against_the_optimized_program(self):
        circuit = sweep_circuit([0.3, 0.7, 0.4])
        sibling = sweep_circuit([0.9, 0.2, 0.8])
        source = SweepProgram.compile(circuit, bind_floats=True)
        optimized = source.optimized()
        assert optimized.binding_row(sibling) == source.binding_row(sibling)
        assert optimized.matches_structure(sibling)


class TestOptInKnobs:
    def test_environment_flag_parsing(self, monkeypatch):
        for value, expected in (
            ("1", True),
            ("true", True),
            ("YES", True),
            (" on ", True),
            ("0", False),
            ("", False),
            ("off", False),
        ):
            monkeypatch.setenv(OPTIMIZE_PROGRAMS_ENV, value)
            assert optimization_enabled() is expected
        monkeypatch.delenv(OPTIMIZE_PROGRAMS_ENV)
        assert optimization_enabled() is False

    def test_resolve_optimization_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(OPTIMIZE_PROGRAMS_ENV, "1")
        assert resolve_optimization(None) is True
        assert resolve_optimization(False) is False
        monkeypatch.delenv(OPTIMIZE_PROGRAMS_ENV)
        assert resolve_optimization(None) is False
        assert resolve_optimization(True) is True

    def test_simulator_cache_serves_fused_programs_under_env(self, monkeypatch):
        monkeypatch.setenv(OPTIMIZE_PROGRAMS_ENV, "1")
        simulator = StatevectorSimulator()
        program = simulator._sweep_program(sweep_circuit([0.3, 0.7, 0.4]))
        assert any(step.fused_from for step in program.steps)
        monkeypatch.delenv(OPTIMIZE_PROGRAMS_ENV)
        plain = StatevectorSimulator()._sweep_program(sweep_circuit([0.3, 0.7, 0.4]))
        assert not any(step.fused_from for step in plain.steps)

    def test_constructor_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv(OPTIMIZE_PROGRAMS_ENV, "1")
        simulator = StatevectorSimulator(optimize_programs=False)
        program = simulator._sweep_program(sweep_circuit([0.3, 0.7, 0.4]))
        assert not any(step.fused_from for step in program.steps)

    def test_compile_optimize_flag(self, london):
        circuit = sweep_circuit([0.3, 0.7, 0.4])
        program = SweepProgram.compile(
            circuit, bind_floats=True, optimize=True, noise_model=london
        )
        assert any(step.fused_from for step in program.steps)

    def test_optimized_is_identity_when_nothing_fuses(self):
        qc = QuantumCircuit(2, 1, name="all-parametric")
        qc.ry(0.1, 0)
        qc.ry(0.2, 1)
        qc.measure(0, 0)
        program = SweepProgram.compile(qc, bind_floats=True)
        assert program.optimized() is program


class TestTemplateCache:
    def test_template_caches_the_fused_variant_per_noise_version(self):
        from repro.quantum.noise import ReadoutError

        noise = get_calibration("ibmq_london").noise_model()
        cache = TranspileCache()
        rng = ensure_rng(5)
        circuit = sweep_circuit(rng.uniform(0, np.pi, 3))
        entry, _ = cache.template(circuit)
        source = entry.ensure_program(optimize=False)
        fused = entry.ensure_program(optimize=True, noise_model=noise)
        assert fused is not source
        assert any(step.fused_from for step in fused.steps)
        # Same noise instance and version: the cached variant is reused.
        assert entry.ensure_program(optimize=True, noise_model=noise) is fused
        # A version bump invalidates the cached fused program.
        noise.add_readout_error(ReadoutError(0.01, 0.01), qubit=None)
        refreshed = entry.ensure_program(optimize=True, noise_model=noise)
        assert refreshed is not fused

    def test_template_default_stays_unfused_without_env(self, monkeypatch):
        monkeypatch.delenv(OPTIMIZE_PROGRAMS_ENV, raising=False)
        cache = TranspileCache()
        entry, _ = cache.template(sweep_circuit([0.3, 0.7, 0.4]))
        program = entry.ensure_program()
        assert not any(step.fused_from for step in program.steps)
