"""Tests for the compile-once sweep-program IR (:mod:`repro.quantum.program`)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import NoiseModel, depolarizing_kraus
from repro.quantum.operations import Parameter, ScaledParameter
from repro.quantum.program import (
    DensitySuperoperatorEngine,
    StatevectorEngine,
    SweepProgram,
    TilePlan,
    gate_noise_superoperator,
)
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator


def sweep_circuit(angles, name="sweep") -> QuantumCircuit:
    """SWAP-test-shaped circuit: shared skeleton, per-call rotation angles."""
    qc = QuantumCircuit(3, 1, name=name)
    qc.h(0)
    qc.ry(angles[0], 1).rz(angles[1], 1)
    qc.ry(angles[2], 2).rz(angles[3], 2)
    qc.cswap(0, 1, 2)
    qc.h(0)
    qc.measure(0, 0)
    return qc


def random_sweep(count, seed):
    rng = np.random.default_rng(seed)
    return [sweep_circuit(rng.uniform(0, np.pi, 4)) for _ in range(count)]


def zero_one(result) -> np.ndarray:
    return np.array(
        [result.probabilities.get("0", 0.0), result.probabilities.get("1", 0.0)]
    )


NOISE = NoiseModel.from_error_rates(0.01, 0.02, readout_error=0.03)


class TestTilePlan:
    def test_circuit_sweep_full_rows_fit(self):
        plan = TilePlan.for_circuit_sweep(10, 4, element_amplitudes=8, max_amplitudes=80)
        assert plan.sample_tile == 4
        assert plan.row_tile == 2  # 10 elements of 8 amplitudes per tile
        tiles = list(plan.flat_tiles())
        assert tiles == [(0, 8), (8, 16), (16, 24), (24, 32), (32, 40)]

    def test_circuit_sweep_splits_rows_when_one_does_not_fit(self):
        plan = TilePlan.for_circuit_sweep(2, 10, element_amplitudes=8, max_amplitudes=32)
        assert plan.row_tile == 1
        assert plan.sample_tile == 4
        tiles = list(plan.flat_tiles())
        # Tiles never straddle a row boundary and cover everything contiguously.
        assert tiles[0] == (0, 4)
        assert (8, 10) in tiles  # clipped at the first row's end
        assert (10, 14) in tiles  # second row restarts its own tiling
        assert tiles[-1] == (18, 20)
        covered = [i for start, stop in tiles for i in range(start, stop)]
        assert covered == list(range(20))

    def test_circuit_sweep_tiny_budget_degrades_to_single_elements(self):
        plan = TilePlan.for_circuit_sweep(3, 2, element_amplitudes=8, max_amplitudes=1)
        assert plan.tile_elements == 1
        assert len(list(plan.flat_tiles())) == 6

    def test_state_overlap_budgets_both_operands(self):
        plan = TilePlan.for_state_overlap(100, 50, state_amplitudes=4, max_amplitudes=80)
        # 20 states fit; the sample axis gets half, the rows the rest.
        assert plan.sample_tile == 10
        assert plan.row_tile == 10
        assert list(plan.sample_tiles())[0] == (0, 10)
        assert list(plan.row_tiles())[-1] == (90, 100)

    def test_empty_grid_yields_no_tiles(self):
        plan = TilePlan.for_circuit_sweep(0, 5, element_amplitudes=2, max_amplitudes=16)
        assert list(plan.flat_tiles()) == []
        assert plan.total_elements == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            TilePlan(rows=-1, samples=2, row_tile=1, sample_tile=1)
        with pytest.raises(SimulationError):
            TilePlan(rows=1, samples=2, row_tile=0, sample_tile=1)
        with pytest.raises(SimulationError):
            TilePlan.for_circuit_sweep(1, 1, element_amplitudes=0, max_amplitudes=8)
        with pytest.raises(SimulationError):
            TilePlan.for_state_overlap(1, 1, state_amplitudes=4, max_amplitudes=0)


class TestCompile:
    def test_bound_mode_columns_and_bindings(self):
        circuits = random_sweep(5, seed=0)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        assert program.num_columns == 4
        assert program.parameters == ()
        assert program.measured_qubits == (0,)
        assert program.clbits == (0,)
        bindings = program.bindings_from_circuits(circuits)
        assert bindings.shape == (5, 4)
        # Column order follows instruction order.
        expected = np.array(
            [[float(p) for inst in c.instructions if inst.is_gate for p in inst.params] for c in circuits]
        )
        np.testing.assert_array_equal(bindings, expected)

    def test_bound_mode_fixed_gates_have_matrices(self):
        program = SweepProgram.compile(random_sweep(1, seed=1)[0], bind_floats=True)
        fixed = [step for step in program.steps if step.is_fixed]
        parametric = [step for step in program.steps if not step.is_fixed]
        assert {step.name for step in fixed} == {"h", "cswap"}
        assert {step.name for step in parametric} == {"ry", "rz"}

    def test_symbolic_mode_orders_columns_by_parameters(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        qc = QuantumCircuit(2, 1)
        qc.ry(theta, 0)
        qc.rz(ScaledParameter(phi, -0.5), 1)
        qc.rz(0.25, 1)  # structural constant -> fixed matrix
        qc.measure(0, 0)
        program = SweepProgram.compile(qc, bind_floats=False, parameters=[phi, theta])
        assert program.parameters == (phi, theta)
        ry = next(step for step in program.steps if step.name == "ry")
        assert ry.slots == (("column", 1, 1.0),)
        scaled_rz = next(
            step for step in program.steps if step.name == "rz" and not step.is_fixed
        )
        assert scaled_rz.slots == (("column", 0, -0.5),)
        fixed_rz = [s for s in program.steps if s.name == "rz" and s.is_fixed]
        assert len(fixed_rz) == 1  # the 0.25 structural constant

    def test_symbolic_mode_rejects_unknown_parameter(self):
        qc = QuantumCircuit(1, 1)
        qc.ry(Parameter("theta"), 0).measure(0, 0)
        with pytest.raises(SimulationError):
            SweepProgram.compile(qc, bind_floats=False, parameters=[Parameter("other")])

    def test_bound_mode_rejects_symbolic(self):
        qc = QuantumCircuit(1, 1)
        qc.ry(Parameter("theta"), 0).measure(0, 0)
        with pytest.raises(SimulationError):
            SweepProgram.compile(qc, bind_floats=True)

    def test_resets_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).reset(0).measure(0, 0)
        with pytest.raises(SimulationError):
            SweepProgram.compile(qc, bind_floats=True)

    def test_double_measurement_rejected(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).measure(0, 0).measure(0, 1)
        with pytest.raises(SimulationError):
            SweepProgram.compile(qc, bind_floats=True)

    def test_matches_structure(self):
        circuits = random_sweep(2, seed=2)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        assert program.matches_structure(circuits[1])
        other = QuantumCircuit(3, 1)
        other.h(0).cx(0, 1).measure(0, 0)
        assert not program.matches_structure(other)

    def test_binding_row_rejects_unbound_site(self):
        circuits = random_sweep(1, seed=3)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        symbolic = sweep_circuit([Parameter("a"), 0.1, 0.2, 0.3])
        with pytest.raises(SimulationError):
            program.binding_row(symbolic)


class TestExecutionEquivalence:
    def test_statevector_matches_per_circuit_loop(self):
        circuits = random_sweep(6, seed=4)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        joint = program.execute(
            program.bindings_from_circuits(circuits), StatevectorEngine()
        )
        for circuit, row in zip(circuits, joint):
            np.testing.assert_allclose(
                row, zero_one(StatevectorSimulator().run(circuit)), atol=1e-12
            )

    def test_density_precomposed_matches_per_circuit_loop(self):
        circuits = random_sweep(5, seed=5)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        engine = DensitySuperoperatorEngine(NOISE)
        joint = program.execute(program.bindings_from_circuits(circuits), engine)
        simulator = DensityMatrixSimulator(noise_model=NOISE)
        for circuit, row in zip(circuits, joint):
            np.testing.assert_allclose(
                row, zero_one(simulator.run(circuit, shots=None)), atol=1e-10
            )

    def test_execute_without_measurement_rejected(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        program = SweepProgram.compile(qc, bind_floats=True)
        with pytest.raises(SimulationError):
            program.execute(np.zeros((1, 0)), StatevectorEngine())

    def test_bindings_shape_validated(self):
        program = SweepProgram.compile(random_sweep(1, seed=6)[0], bind_floats=True)
        with pytest.raises(SimulationError):
            program.execute(np.zeros((2, 3)), StatevectorEngine())
        with pytest.raises(SimulationError):
            program.execute(np.zeros((0, 4)), StatevectorEngine())


class TestTiledExecution:
    def test_statevector_tiled_bit_identical(self):
        circuits = random_sweep(7, seed=7)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        bindings = program.bindings_from_circuits(circuits)
        full = program.execute(bindings, StatevectorEngine())
        for row_tile in (1, 2, 3, 5):
            plan = TilePlan(rows=7, samples=1, row_tile=row_tile, sample_tile=1)
            tiled = program.execute(bindings, StatevectorEngine(), tile_plan=plan)
            np.testing.assert_array_equal(tiled, full)

    def test_density_tiled_matches_untiled(self):
        circuits = random_sweep(6, seed=8)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        bindings = program.bindings_from_circuits(circuits)
        engine = DensitySuperoperatorEngine(NOISE)
        full = program.execute(bindings, engine)
        for row_tile in (1, 2, 4):
            plan = TilePlan(rows=6, samples=1, row_tile=row_tile, sample_tile=1)
            tiled = program.execute(bindings, engine, tile_plan=plan)
            # BLAS kernels vary with the batch extent, so the density path
            # guarantees agreement to floating-point noise (and hence
            # seed-identical sampled counts), not raw bit equality.
            np.testing.assert_allclose(tiled, full, atol=1e-12)

    def test_tile_plan_extent_mismatch_rejected(self):
        circuits = random_sweep(3, seed=9)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        bindings = program.bindings_from_circuits(circuits)
        plan = TilePlan(rows=4, samples=1, row_tile=2, sample_tile=1)
        with pytest.raises(SimulationError):
            program.execute(bindings, StatevectorEngine(), tile_plan=plan)

    def test_shared_angle_sweep_keeps_shared_path_under_tiling(self):
        circuits = [sweep_circuit([0.3, 0.7, 0.2, 0.9]) for _ in range(4)]
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        bindings = program.bindings_from_circuits(circuits)
        full = program.execute(bindings, StatevectorEngine())
        plan = TilePlan(rows=4, samples=1, row_tile=3, sample_tile=1)
        np.testing.assert_array_equal(
            program.execute(bindings, StatevectorEngine(), tile_plan=plan), full
        )


class TestNoisePrecomposition:
    def test_gate_noise_superoperator_matches_sequential_channels(self):
        """The precomposed matrix equals channel-by-channel Kraus application."""
        noise = NoiseModel()
        noise.add_gate_error("cx", depolarizing_kraus(0.05, 2))
        noise.add_all_qubit_error(depolarizing_kraus(0.02, 1), 2)
        superop = gate_noise_superoperator("cx", (0, 1), noise)
        rng = np.random.default_rng(10)
        amplitudes = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        amplitudes /= np.linalg.norm(amplitudes)
        # Sequential application, exactly like the per-circuit simulator.
        sequential = DensityMatrix(np.outer(amplitudes, amplitudes.conj()))
        sequential.apply_kraus(depolarizing_kraus(0.05, 2), (0, 1))
        for qubit in (0, 1):
            sequential.apply_kraus(depolarizing_kraus(0.02, 1), (qubit,))
        vectorised = superop @ np.outer(amplitudes, amplitudes.conj()).reshape(-1)
        np.testing.assert_allclose(
            vectorised.reshape(4, 4), sequential.data, atol=1e-12
        )

    def test_ideal_model_precomposes_nothing(self):
        assert gate_noise_superoperator("h", (0,), NoiseModel.ideal()) is None

    def test_engine_plans_compile_once_per_program(self):
        circuits = random_sweep(3, seed=11)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        bindings = program.bindings_from_circuits(circuits)
        engine = DensitySuperoperatorEngine(NOISE)
        for _ in range(3):
            program.execute(bindings, engine)
        assert engine.plans_compiled == 1

    def test_incompatible_channel_width_rejected(self):
        noise = NoiseModel()
        noise.add_gate_error("h", depolarizing_kraus(0.1, 2))
        with pytest.raises(SimulationError):
            gate_noise_superoperator("h", (0,), noise)

    def test_in_place_noise_mutation_invalidates_plans(self):
        """Mutating the model after a sweep must recompose the plans.

        ``NoiseModel`` is a chainable builder; a model attached to an engine
        can grow new channels in place, and the precomposed superoperator
        plans must track it exactly like the per-circuit loop does.
        """
        circuits = random_sweep(3, seed=12)
        program = SweepProgram.compile(circuits[0], bind_floats=True)
        bindings = program.bindings_from_circuits(circuits)
        model = NoiseModel()
        engine = DensitySuperoperatorEngine(model)
        before = program.execute(bindings, engine)
        model.add_all_qubit_error(depolarizing_kraus(0.2, 1), 1)
        after = program.execute(bindings, engine)
        assert engine.plans_compiled == 2
        assert not np.allclose(before, after)
        simulator = DensityMatrixSimulator(noise_model=model)
        for circuit, row in zip(circuits, after):
            np.testing.assert_allclose(
                row, zero_one(simulator.run(circuit, shots=None)), atol=1e-10
            )


class TestSimulatorTracksLiveNoiseModel:
    def test_run_batch_matches_run_after_in_place_mutation(self):
        """run() and run_batch() must agree after the model grows channels."""
        circuits = random_sweep(2, seed=13)
        model = NoiseModel()
        simulator = DensityMatrixSimulator(noise_model=model, seed=0)
        simulator.run_batch(circuits, shots=None)  # plans the ideal model
        model.add_all_qubit_error(depolarizing_kraus(0.25, 1), 1)
        batched = simulator.run_batch(circuits, shots=None)
        for circuit, result in zip(circuits, batched):
            loop = DensityMatrixSimulator(noise_model=model).run(circuit, shots=None)
            assert result.probabilities["0"] == pytest.approx(
                loop.probabilities["0"], abs=1e-10
            )


class TestBarrierInsensitiveBindings:
    def test_binding_row_skips_sibling_barriers(self):
        """Sweep siblings may place barriers differently; angles still map."""
        reference = QuantumCircuit(2, 1, name="ref")
        reference.barrier(0, 1)
        reference.ry(0.1, 0).rz(0.2, 1)
        reference.measure(0, 0)
        sibling = QuantumCircuit(2, 1, name="sib")
        sibling.ry(0.3, 0)
        sibling.barrier(0, 1)
        sibling.rz(0.4, 1)
        sibling.measure(0, 0)
        program = SweepProgram.compile(reference, bind_floats=True)
        np.testing.assert_array_equal(
            program.bindings_from_circuits([reference, sibling]),
            [[0.1, 0.2], [0.3, 0.4]],
        )

    def test_binding_row_rejects_gate_mismatch(self):
        reference = QuantumCircuit(1, 1, name="ref")
        reference.ry(0.1, 0).measure(0, 0)
        other = QuantumCircuit(1, 1, name="other")
        other.rx(0.1, 0).measure(0, 0)
        shorter = QuantumCircuit(1, 1, name="short")
        shorter.measure(0, 0)
        program = SweepProgram.compile(reference, bind_floats=True)
        with pytest.raises(SimulationError):
            program.binding_row(other)
        with pytest.raises(SimulationError):
            program.binding_row(shorter)
