"""Tests for basis decomposition and SWAP routing."""

import numpy as np
import pytest

from repro.exceptions import TranspilerError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Parameter
from repro.quantum.statevector import Statevector
from repro.quantum.topology import CouplingMap
from repro.quantum.operations import ScaledParameter
from repro.quantum.transpiler import (
    BASIS_GATES,
    TranspileCache,
    circuit_structure_key,
    decompose_to_basis,
    route_circuit,
    transpile,
)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a (small) measurement-free circuit."""
    dim = 2**circuit.num_qubits
    columns = []
    for index in range(dim):
        amplitudes = np.zeros(dim, dtype=complex)
        amplitudes[index] = 1.0
        state = Statevector(amplitudes)
        state.evolve(circuit)
        columns.append(state.data)
    return np.array(columns).T


def assert_equal_up_to_phase(matrix_a: np.ndarray, matrix_b: np.ndarray, atol: float = 1e-9) -> None:
    index = np.unravel_index(np.argmax(np.abs(matrix_a)), matrix_a.shape)
    phase = matrix_b[index] / matrix_a[index]
    assert abs(abs(phase) - 1.0) < 1e-6
    np.testing.assert_allclose(matrix_a * phase, matrix_b, atol=atol)


class TestDecomposition:
    @pytest.mark.parametrize(
        "build",
        [
            lambda qc: qc.y(0),
            lambda qc: qc.s(0),
            lambda qc: qc.t(0),
            lambda qc: qc.r(0.7, 0.3, 0),
            lambda qc: qc.u3(0.3, 0.8, -0.4, 0),
            lambda qc: qc.cz(0, 1),
            lambda qc: qc.swap(0, 1),
            lambda qc: qc.cry(0.9, 0, 1),
            lambda qc: qc.crz(1.3, 0, 1),
            lambda qc: qc.crx(0.5, 0, 1),
            lambda qc: qc.rzz(0.8, 0, 1),
            lambda qc: qc.rxx(0.8, 0, 1),
            lambda qc: qc.ryy(0.8, 0, 1),
            lambda qc: qc.cswap(0, 1, 2),
        ],
        ids=["y", "s", "t", "r", "u3", "cz", "swap", "cry", "crz", "crx", "rzz", "rxx", "ryy", "cswap"],
    )
    def test_decomposition_preserves_unitary(self, build):
        original = QuantumCircuit(3)
        build(original)
        decomposed = decompose_to_basis(original)
        assert all(
            inst.name in BASIS_GATES or inst.name in ("measure", "reset", "barrier")
            for inst in decomposed.instructions
        )
        assert_equal_up_to_phase(circuit_unitary(original), circuit_unitary(decomposed))

    def test_basis_gates_pass_through(self):
        qc = QuantumCircuit(2, 1)
        qc.h(0).cx(0, 1).rz(0.3, 1).measure(0, 0)
        decomposed = decompose_to_basis(qc)
        assert decomposed.count_ops() == qc.count_ops()

    def test_cswap_expands_to_many_cnots(self):
        qc = QuantumCircuit(3)
        qc.cswap(0, 1, 2)
        decomposed = decompose_to_basis(qc)
        assert decomposed.count_ops()["cx"] == 8

    def test_parameterised_gate_rejected(self):
        qc = QuantumCircuit(2)
        qc.cry(Parameter("t"), 0, 1)
        with pytest.raises(TranspilerError):
            decompose_to_basis(qc)

    def test_quclassi_discriminator_decomposes(self):
        """The paper's full SWAP-test circuit decomposes into the native basis."""
        qc = QuantumCircuit(5, 1)
        qc.h(0)
        qc.ry(0.4, 1).rz(0.2, 1).ry(0.7, 2).rz(0.9, 2)
        qc.ry(0.1, 3).rz(0.5, 3).ry(0.3, 4).rz(0.8, 4)
        qc.cswap(0, 1, 3).cswap(0, 2, 4)
        qc.h(0).measure(0, 0)
        decomposed = decompose_to_basis(qc)
        assert decomposed.count_ops()["cx"] == 16
        assert decomposed.count_ops()["measure"] == 1


class TestRouting:
    def test_no_swaps_when_already_coupled(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(1, 2)
        result = route_circuit(qc, CouplingMap.linear(3))
        assert result.inserted_swaps == 0

    def test_swaps_inserted_for_distant_pair(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        result = route_circuit(qc, CouplingMap.linear(3))
        assert result.inserted_swaps == 1
        assert result.added_cx == 3

    def test_routed_circuit_respects_coupling(self):
        qc = QuantumCircuit(5)
        qc.cx(0, 4).cx(1, 3).cx(0, 2)
        coupling = CouplingMap.linear(5)
        result = route_circuit(qc, coupling)
        for inst in result.circuit.instructions:
            if inst.is_gate and inst.num_qubits == 2:
                assert coupling.are_coupled(*inst.qubits)

    def test_routing_preserves_measurement_statistics(self):
        """Routing is semantics-preserving: same outcome distribution, relabelled qubits."""
        from repro.quantum.simulator import StatevectorSimulator

        qc = QuantumCircuit(4, 1)
        qc.h(0).cx(0, 3).ry(0.6, 3)
        qc.measure(3, 0)
        routed = route_circuit(decompose_to_basis(qc), CouplingMap.linear(4)).circuit
        original = StatevectorSimulator().run(qc).probabilities
        after = StatevectorSimulator().run(routed).probabilities
        for key, value in original.items():
            assert after.get(key, 0.0) == pytest.approx(value, abs=1e-9)

    def test_three_qubit_gate_rejected(self):
        qc = QuantumCircuit(3)
        qc.cswap(0, 1, 2)
        with pytest.raises(TranspilerError):
            route_circuit(qc, CouplingMap.linear(3))

    def test_circuit_larger_than_device_rejected(self):
        with pytest.raises(TranspilerError):
            route_circuit(QuantumCircuit(4), CouplingMap.linear(3))

    def test_all_to_all_never_adds_swaps(self):
        qc = QuantumCircuit(5)
        for a in range(5):
            for b in range(a + 1, 5):
                qc.cx(a, b)
        result = route_circuit(qc, CouplingMap.all_to_all(5))
        assert result.inserted_swaps == 0

    def test_initial_layout_length_checked(self):
        with pytest.raises(TranspilerError):
            route_circuit(QuantumCircuit(2), CouplingMap.linear(3), initial_layout=[0])


class TestTranspile:
    def test_without_coupling_map(self):
        qc = QuantumCircuit(3)
        qc.cswap(0, 1, 2)
        result = transpile(qc)
        assert result.inserted_swaps == 0
        assert result.cx_count == 8

    def test_ionq_vs_constrained_topology_cx_gap(self):
        """The routed-CNOT gap that explains the paper's IonQ vs Cairo result."""
        qc = QuantumCircuit(5, 1)
        qc.h(0)
        for q in range(1, 5):
            qc.ry(0.3 * q, q)
        qc.cswap(0, 1, 3).cswap(0, 2, 4)
        qc.h(0).measure(0, 0)
        free = transpile(qc, CouplingMap.all_to_all(5))
        constrained = transpile(qc, CouplingMap.ibmq_5q_t())
        assert free.inserted_swaps == 0
        assert constrained.inserted_swaps > 0
        assert constrained.cx_count > free.cx_count

    def test_depth_reported(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        assert transpile(qc).depth == 2


def _sweep_circuit(angles) -> QuantumCircuit:
    """Discriminator-shaped circuit whose structure is shared across angles."""
    qc = QuantumCircuit(5, 1, name="quclassi_discriminator")
    qc.h(0)
    qc.ry(angles[0], 1).rz(angles[1], 1).ry(angles[2], 2).rz(angles[3], 2)
    qc.ry(angles[4], 3).rz(angles[5], 3).ry(angles[6], 4).rz(angles[7], 4)
    qc.cswap(0, 1, 3).cswap(0, 2, 4)
    qc.h(0).measure(0, 0)
    return qc


class TestSymbolicDecomposition:
    def test_symbolic_cry_decomposes_to_scaled_parameters(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(2)
        qc.cry(theta, 0, 1)
        decomposed = decompose_to_basis(qc, allow_symbolic=True)
        scaled = [
            p
            for inst in decomposed.instructions
            for p in inst.params
            if isinstance(p, ScaledParameter)
        ]
        assert {p.coefficient for p in scaled} == {0.5, -0.5}
        assert all(p.parameter == theta for p in scaled)

    def test_symbolic_decomposition_binds_to_the_concrete_one(self):
        """Bind-after-decompose must equal decompose-after-bind, gate for gate."""
        theta = Parameter("theta")
        qc = QuantumCircuit(2)
        qc.cry(theta, 0, 1).rzz(theta, 0, 1)
        symbolic = decompose_to_basis(qc, allow_symbolic=True)
        for value in (0.3, -1.7, 2.9):
            bound_after = symbolic.bind_parameters({theta: value})
            bound_before = decompose_to_basis(qc.bind_parameters({theta: value}))
            assert len(bound_after.instructions) == len(bound_before.instructions)
            for after, before in zip(bound_after.instructions, bound_before.instructions):
                assert after.name == before.name and after.qubits == before.qubits
                np.testing.assert_allclose(
                    [float(p) for p in after.params],
                    [float(p) for p in before.params],
                    atol=1e-15,
                )

    def test_symbolic_rejected_by_default(self):
        qc = QuantumCircuit(2)
        qc.cry(Parameter("t"), 0, 1)
        with pytest.raises(TranspilerError):
            transpile(qc)


class TestStructureKey:
    def test_same_structure_different_angles_share_a_key(self):
        rng = np.random.default_rng(0)
        a = _sweep_circuit(rng.uniform(0, np.pi, 8))
        b = _sweep_circuit(rng.uniform(0, np.pi, 8))
        assert circuit_structure_key(a) == circuit_structure_key(b)

    def test_different_structure_changes_the_key(self):
        a = _sweep_circuit(np.zeros(8))
        b = QuantumCircuit(5, 1)
        b.h(0).measure(0, 0)
        assert circuit_structure_key(a) != circuit_structure_key(b)


class TestTranspileCache:
    def test_hit_output_identical_to_direct_transpile(self):
        cache = TranspileCache()
        cmap = CouplingMap.ibmq_5q_t()
        rng = np.random.default_rng(1)
        for _ in range(3):
            circuit = _sweep_circuit(rng.uniform(0, np.pi, 8))
            cached = cache.transpile(circuit, cmap)
            direct = transpile(circuit, cmap)
            assert len(cached.circuit.instructions) == len(direct.circuit.instructions)
            for a, b in zip(cached.circuit.instructions, direct.circuit.instructions):
                assert a.name == b.name and a.qubits == b.qubits and a.clbits == b.clbits
                np.testing.assert_allclose(
                    [float(p) for p in a.params],
                    [float(p) for p in b.params],
                    atol=1e-15,
                )
            assert (cached.cx_count, cached.inserted_swaps, cached.depth) == (
                direct.cx_count,
                direct.inserted_swaps,
                direct.depth,
            )
        assert cache.stats == {"hits": 2, "misses": 1, "entries": 1}

    def test_cached_circuit_simulates_identically(self):
        cache = TranspileCache()
        cmap = CouplingMap.ibmq_5q_t()
        rng = np.random.default_rng(2)
        cache.transpile(_sweep_circuit(rng.uniform(0, np.pi, 8)), cmap)  # prime
        circuit = _sweep_circuit(rng.uniform(0, np.pi, 8))
        from repro.quantum.simulator import StatevectorSimulator

        cached_probs = StatevectorSimulator().run(cache.transpile(circuit, cmap).circuit).probabilities
        direct_probs = StatevectorSimulator().run(transpile(circuit, cmap).circuit).probabilities
        assert set(cached_probs) == set(direct_probs)
        for key, value in direct_probs.items():
            assert cached_probs[key] == pytest.approx(value, abs=1e-12)

    def test_distinct_coupling_maps_do_not_collide(self):
        cache = TranspileCache()
        circuit = _sweep_circuit(np.linspace(0.1, 0.8, 8))
        routed = cache.transpile(circuit, CouplingMap.ibmq_5q_t())
        free = cache.transpile(circuit, CouplingMap.all_to_all(5))
        assert cache.stats["misses"] == 2
        assert routed.inserted_swaps > 0
        assert free.inserted_swaps == 0

    def test_symbolic_circuits_bypass_the_cache(self):
        cache = TranspileCache()
        qc = QuantumCircuit(2)
        qc.ry(Parameter("t"), 0).cx(0, 1)
        result = cache.transpile(qc.bind_parameters({Parameter("t"): 0.3}), None)
        assert cache.stats["misses"] == 1
        symbolic = cache.transpile(qc, None)
        assert cache.stats == {"hits": 0, "misses": 1, "entries": 1}
        assert symbolic.circuit.num_parameters == 1
        assert result.circuit.num_parameters == 0

    def test_lru_eviction_bounds_entries(self):
        cache = TranspileCache(max_entries=2)
        for width in (2, 3, 4):
            qc = QuantumCircuit(width)
            for q in range(width):
                qc.ry(0.1 * (q + 1), q)
            cache.transpile(qc, None)
        assert len(cache) == 2
        assert cache.stats["misses"] == 3

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(TranspilerError):
            TranspileCache(max_entries=0)
