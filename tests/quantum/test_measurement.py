"""Tests for measurement-result containers."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.measurement import Counts, counts_from_probabilities


class TestCounts:
    def test_shots_and_width(self):
        counts = Counts({"00": 600, "11": 400})
        assert counts.shots == 1000
        assert counts.num_bits == 2

    def test_probability(self):
        counts = Counts({"0": 750, "1": 250})
        assert counts.probability("0") == pytest.approx(0.75)
        assert counts.probability("1") == pytest.approx(0.25)

    def test_probability_of_unseen_outcome_is_zero(self):
        assert Counts({"0": 10}).probability("1") == 0.0

    def test_probabilities_sum_to_one(self):
        counts = Counts({"00": 1, "01": 2, "10": 3, "11": 4})
        assert sum(counts.probabilities().values()) == pytest.approx(1.0)

    def test_marginal_probability(self):
        counts = Counts({"00": 50, "01": 25, "10": 20, "11": 5})
        assert counts.marginal_probability(0, 1) == pytest.approx(0.25)
        assert counts.marginal_probability(1, 1) == pytest.approx(0.30)

    def test_marginal_out_of_range(self):
        with pytest.raises(SimulationError):
            Counts({"0": 1}).marginal_probability(1)

    def test_expectation_z(self):
        counts = Counts({"0": 75, "1": 25})
        assert counts.expectation_z(0) == pytest.approx(0.5)

    def test_most_frequent(self):
        assert Counts({"01": 3, "10": 7}).most_frequent() == "10"

    def test_merged_with(self):
        merged = Counts({"0": 10}).merged_with(Counts({"0": 5, "1": 5}))
        assert merged.data == {"0": 15, "1": 5}

    def test_merge_width_mismatch(self):
        with pytest.raises(SimulationError):
            Counts({"0": 1}).merged_with(Counts({"00": 1}))

    def test_to_array(self):
        array = Counts({"00": 1, "11": 3}).to_array()
        np.testing.assert_allclose(array, [0.25, 0, 0, 0.75])

    def test_empty_counts_rejected(self):
        with pytest.raises(SimulationError):
            Counts({})

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(SimulationError):
            Counts({"0": 1, "00": 1})

    def test_negative_counts_rejected(self):
        with pytest.raises(SimulationError):
            Counts({"0": -1})


class TestCountsFromProbabilities:
    def test_from_dict(self):
        counts = counts_from_probabilities({"0": 0.5, "1": 0.5}, shots=1000, rng=np.random.default_rng(0))
        assert counts.shots == 1000

    def test_from_array(self):
        counts = counts_from_probabilities(np.array([0.25, 0.75]), shots=400, rng=np.random.default_rng(0))
        assert counts.num_bits == 1
        assert counts.shots == 400

    def test_deterministic_distribution(self):
        counts = counts_from_probabilities(np.array([1.0, 0.0]), shots=100, rng=np.random.default_rng(0))
        assert counts.data == {"0": 100}

    def test_unnormalised_input_is_renormalised(self):
        counts = counts_from_probabilities(np.array([2.0, 2.0]), shots=100, rng=np.random.default_rng(0))
        assert counts.shots == 100

    def test_all_zero_probabilities_rejected(self):
        """Regression: used to divide by zero and build a NaN histogram."""
        with pytest.raises(SimulationError, match="all zero"):
            counts_from_probabilities(np.array([0.0, 0.0]), shots=10, rng=np.random.default_rng(0))

    def test_all_zero_mapping_rejected(self):
        with pytest.raises(SimulationError, match="all zero"):
            counts_from_probabilities({"0": 0.0, "1": 0.0}, shots=10, rng=np.random.default_rng(0))

    def test_empty_mapping_rejected(self):
        """Regression: used to raise an opaque IndexError on keys[0]."""
        with pytest.raises(SimulationError, match="empty"):
            counts_from_probabilities({}, shots=10, rng=np.random.default_rng(0))

    def test_empty_array_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            counts_from_probabilities(np.array([]), shots=10, rng=np.random.default_rng(0))

    def test_non_finite_probabilities_rejected(self):
        with pytest.raises(SimulationError):
            counts_from_probabilities(np.array([np.nan, 1.0]), shots=10, rng=np.random.default_rng(0))


class TestNormalizeOutcomeProbabilities:
    def test_vector_is_clipped_and_normalised(self):
        from repro.quantum.measurement import normalize_outcome_probabilities

        out = normalize_outcome_probabilities([0.2, -1e-18, 0.2])
        assert out.sum() == pytest.approx(1.0)
        assert out[1] == 0.0

    def test_matrix_normalises_each_row(self):
        from repro.quantum.measurement import normalize_outcome_probabilities

        out = normalize_outcome_probabilities([[0.5, 0.5], [0.2, 0.6]])
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_zero_row_rejected(self):
        from repro.quantum.measurement import normalize_outcome_probabilities

        with pytest.raises(SimulationError):
            normalize_outcome_probabilities([[0.5, 0.5], [0.0, 0.0]])


class TestDefaultSamplingSeed:
    """Omitting ``rng`` falls back to the documented seed, not OS entropy."""

    PROBS = {"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25}

    def test_rngless_calls_are_deterministic(self):
        first = counts_from_probabilities(self.PROBS, 1000)
        second = counts_from_probabilities(self.PROBS, 1000)
        assert first.data == second.data

    def test_default_matches_documented_seed(self):
        from repro.quantum.measurement import DEFAULT_SAMPLING_SEED

        seeded = counts_from_probabilities(
            self.PROBS, 1000, rng=np.random.default_rng(DEFAULT_SAMPLING_SEED)
        )
        assert counts_from_probabilities(self.PROBS, 1000).data == seeded.data

    def test_explicit_rng_still_controls_the_draw(self):
        a = counts_from_probabilities(self.PROBS, 1000, rng=np.random.default_rng(1))
        b = counts_from_probabilities(self.PROBS, 1000, rng=np.random.default_rng(1))
        c = counts_from_probabilities(self.PROBS, 1000, rng=np.random.default_rng(2))
        assert a.data == b.data
        assert a.data != c.data
