"""Tests for execution backends."""

import pytest

from repro.exceptions import BackendError
from repro.quantum.backend import (
    DeviceProperties,
    IdealBackend,
    NoisyBackend,
    SampledBackend,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.topology import CouplingMap


def ghz_circuit(num_qubits: int = 3) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits, name="ghz")
    qc.h(0)
    for qubit in range(num_qubits - 1):
        qc.cx(qubit, qubit + 1)
    qc.measure_all()
    return qc


def make_device(name: str = "test_device", num_qubits: int = 5, noisy: bool = True) -> DeviceProperties:
    noise = NoiseModel.from_error_rates(0.001, 0.01, 0.02) if noisy else NoiseModel.ideal()
    return DeviceProperties(
        name=name,
        num_qubits=num_qubits,
        coupling_map=CouplingMap.linear(num_qubits),
        noise_model=noise,
        max_shots=4096,
        queue_latency_seconds=42.0,
    )


class TestIdealBackend:
    def test_exact_run(self):
        result = IdealBackend().run(ghz_circuit())
        assert result.probabilities["000"] == pytest.approx(0.5)
        assert result.probabilities["111"] == pytest.approx(0.5)

    def test_sampled_run(self):
        result = IdealBackend(seed=0).run(ghz_circuit(), shots=100)
        assert result.counts.shots == 100

    def test_not_noisy(self):
        assert IdealBackend().is_noisy is False

    def test_ancilla_zero_probability(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        assert IdealBackend().ancilla_zero_probability(qc) == pytest.approx(1.0)


class TestSampledBackend:
    def test_always_samples(self):
        backend = SampledBackend(shots=256, seed=0)
        result = backend.run(ghz_circuit())
        assert result.counts.shots == 256

    def test_explicit_shots_override_default(self):
        backend = SampledBackend(shots=256, seed=0)
        assert backend.run(ghz_circuit(), shots=64).counts.shots == 64

    def test_invalid_shots(self):
        with pytest.raises(BackendError):
            SampledBackend(shots=0)


class TestNoisyBackend:
    def test_runs_and_reports_transpile_stats(self):
        backend = NoisyBackend(make_device(), seed=0)
        result = backend.run(ghz_circuit(), shots=512)
        assert result.counts.shots == 512
        assert backend.last_transpile_stats["cx_count"] >= 2
        assert result.metadata["backend"] == "test_device"
        assert result.metadata["queue_latency_seconds"] == 42.0

    def test_is_noisy(self):
        assert NoisyBackend(make_device()).is_noisy is True

    def test_noise_degrades_ghz_parity(self):
        noisy = NoisyBackend(make_device(noisy=True), seed=0).run(ghz_circuit(), shots=None)
        clean = NoisyBackend(make_device(noisy=False), seed=0).run(ghz_circuit(), shots=None)
        clean_mass = clean.probabilities.get("000", 0) + clean.probabilities.get("111", 0)
        noisy_mass = noisy.probabilities.get("000", 0) + noisy.probabilities.get("111", 0)
        assert clean_mass == pytest.approx(1.0, abs=1e-9)
        assert noisy_mass < clean_mass

    def test_shot_limit_enforced(self):
        backend = NoisyBackend(make_device())
        with pytest.raises(BackendError):
            backend.run(ghz_circuit(), shots=100000)

    def test_too_wide_circuit_rejected(self):
        backend = NoisyBackend(make_device(num_qubits=2))
        with pytest.raises(BackendError):
            backend.run(ghz_circuit(3))

    def test_small_circuit_on_large_device_uses_small_region(self):
        """A 2-qubit circuit on a 5-qubit device must not simulate 5 qubits of state."""
        backend = NoisyBackend(make_device(num_qubits=5), seed=0)
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure_all()
        result = backend.run(qc, shots=None)
        assert result.density_matrix.num_qubits == 2
        assert sum(result.probabilities.values()) == pytest.approx(1.0)
