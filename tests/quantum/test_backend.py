"""Tests for execution backends."""

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.quantum.backend import (
    Backend,
    DeviceProperties,
    IdealBackend,
    NoisyBackend,
    SampledBackend,
    validate_shots,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.topology import CouplingMap


def ghz_circuit(num_qubits: int = 3) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits, name="ghz")
    qc.h(0)
    for qubit in range(num_qubits - 1):
        qc.cx(qubit, qubit + 1)
    qc.measure_all()
    return qc


def make_device(name: str = "test_device", num_qubits: int = 5, noisy: bool = True) -> DeviceProperties:
    noise = NoiseModel.from_error_rates(0.001, 0.01, 0.02) if noisy else NoiseModel.ideal()
    return DeviceProperties(
        name=name,
        num_qubits=num_qubits,
        coupling_map=CouplingMap.linear(num_qubits),
        noise_model=noise,
        max_shots=4096,
        queue_latency_seconds=42.0,
    )


class TestIdealBackend:
    def test_exact_run(self):
        result = IdealBackend().run(ghz_circuit())
        assert result.probabilities["000"] == pytest.approx(0.5)
        assert result.probabilities["111"] == pytest.approx(0.5)

    def test_sampled_run(self):
        result = IdealBackend(seed=0).run(ghz_circuit(), shots=100)
        assert result.counts.shots == 100

    def test_not_noisy(self):
        assert IdealBackend().is_noisy is False

    def test_ancilla_zero_probability(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        assert IdealBackend().ancilla_zero_probability(qc) == pytest.approx(1.0)


class TestSampledBackend:
    def test_always_samples(self):
        backend = SampledBackend(shots=256, seed=0)
        result = backend.run(ghz_circuit())
        assert result.counts.shots == 256

    def test_explicit_shots_override_default(self):
        backend = SampledBackend(shots=256, seed=0)
        assert backend.run(ghz_circuit(), shots=64).counts.shots == 64

    def test_invalid_shots(self):
        with pytest.raises(BackendError):
            SampledBackend(shots=0)


class TestNoisyBackend:
    def test_runs_and_reports_transpile_stats(self):
        backend = NoisyBackend(make_device(), seed=0)
        result = backend.run(ghz_circuit(), shots=512)
        assert result.counts.shots == 512
        assert backend.last_transpile_stats["cx_count"] >= 2
        assert result.metadata["backend"] == "test_device"
        assert result.metadata["queue_latency_seconds"] == 42.0

    def test_is_noisy(self):
        assert NoisyBackend(make_device()).is_noisy is True

    def test_noise_degrades_ghz_parity(self):
        noisy = NoisyBackend(make_device(noisy=True), seed=0).run(ghz_circuit(), shots=None)
        clean = NoisyBackend(make_device(noisy=False), seed=0).run(ghz_circuit(), shots=None)
        clean_mass = clean.probabilities.get("000", 0) + clean.probabilities.get("111", 0)
        noisy_mass = noisy.probabilities.get("000", 0) + noisy.probabilities.get("111", 0)
        assert clean_mass == pytest.approx(1.0, abs=1e-9)
        assert noisy_mass < clean_mass

    def test_shot_limit_enforced(self):
        backend = NoisyBackend(make_device())
        with pytest.raises(BackendError):
            backend.run(ghz_circuit(), shots=100000)

    def test_too_wide_circuit_rejected(self):
        backend = NoisyBackend(make_device(num_qubits=2))
        with pytest.raises(BackendError):
            backend.run(ghz_circuit(3))

    def test_small_circuit_on_large_device_uses_small_region(self):
        """A 2-qubit circuit on a 5-qubit device must not simulate 5 qubits of state."""
        backend = NoisyBackend(make_device(num_qubits=5), seed=0)
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure_all()
        result = backend.run(qc, shots=None)
        assert result.density_matrix.num_qubits == 2
        assert sum(result.probabilities.values()) == pytest.approx(1.0)


def rotation_circuit(angles) -> QuantumCircuit:
    """Two-qubit rotation circuit with a shared structure across angle sets."""
    qc = QuantumCircuit(2, 1, name="rotations")
    qc.ry(angles[0], 0).rz(angles[1], 0).ry(angles[2], 1)
    qc.cx(0, 1)
    qc.measure(0, 0)
    return qc


class TestShotsValidation:
    """shots=0 must raise, never silently fall back to a default count."""

    def test_validate_shots_helper(self):
        assert validate_shots(None, "b") is None
        assert validate_shots(128, "b") == 128
        for bad in (0, -1, 1.5, "64", True):
            with pytest.raises(BackendError):
                validate_shots(bad, "b")

    def test_ideal_backend_rejects_zero_shots(self):
        with pytest.raises(BackendError):
            IdealBackend().run(ghz_circuit(), shots=0)

    def test_sampled_backend_zero_shots_does_not_fall_back_to_default(self):
        """Regression: ``shots or self.shots`` used to run 256 shots for shots=0."""
        backend = SampledBackend(shots=256, seed=0)
        with pytest.raises(BackendError):
            backend.run(ghz_circuit(), shots=0)

    def test_noisy_backend_rejects_zero_shots(self):
        with pytest.raises(BackendError):
            NoisyBackend(make_device(), seed=0).run(ghz_circuit(), shots=0)

    def test_run_batch_rejects_zero_shots(self):
        for backend in (
            IdealBackend(),
            SampledBackend(shots=64, seed=0),
            NoisyBackend(make_device(), seed=0),
        ):
            with pytest.raises(BackendError):
                backend.run_batch([ghz_circuit()], shots=0)

    def test_negative_shots_rejected_everywhere(self):
        for backend in (
            IdealBackend(),
            SampledBackend(shots=64, seed=0),
            NoisyBackend(make_device(), seed=0),
        ):
            with pytest.raises(BackendError):
                backend.run(ghz_circuit(), shots=-8)


class TestSupportsBatch:
    def test_simulator_backends_advertise_batch_support(self):
        assert IdealBackend().supports_batch is True
        assert SampledBackend(shots=64).supports_batch is True
        assert NoisyBackend(make_device()).supports_batch is True

    def test_base_backend_defaults_to_no_batch_support(self):
        class MinimalBackend(Backend):
            def run(self, circuit, shots=None):
                return IdealBackend().run(circuit, shots=shots)

        assert MinimalBackend().supports_batch is False


class TestRunBatch:
    def test_exact_batch_matches_per_circuit_runs(self):
        rng = np.random.default_rng(5)
        circuits = [rotation_circuit(rng.uniform(0, np.pi, 3)) for _ in range(7)]
        backend = IdealBackend()
        batched = backend.run_batch(circuits, shots=None)
        for circuit, result in zip(circuits, batched):
            single = IdealBackend().run(circuit, shots=None)
            assert set(result.probabilities) == set(single.probabilities)
            for key, value in single.probabilities.items():
                assert result.probabilities[key] == pytest.approx(value, abs=1e-12)

    def test_sampled_batch_seed_matches_per_circuit_loop(self):
        rng = np.random.default_rng(6)
        circuits = [rotation_circuit(rng.uniform(0, np.pi, 3)) for _ in range(5)]
        batched = SampledBackend(shots=300, seed=9).run_batch(circuits)
        loop_backend = SampledBackend(shots=300, seed=9)
        looped = [loop_backend.run(circuit) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]

    def test_ancilla_zero_probabilities_matches_scalar_helper(self):
        rng = np.random.default_rng(7)
        circuits = [rotation_circuit(rng.uniform(0, np.pi, 3)) for _ in range(4)]
        backend = IdealBackend()
        vector = backend.ancilla_zero_probabilities(circuits, shots=None)
        scalars = [backend.ancilla_zero_probability(c, shots=None) for c in circuits]
        np.testing.assert_allclose(vector, scalars, atol=1e-12)

    def test_empty_batch_yields_empty_results_on_every_backend(self):
        for backend in (
            IdealBackend(),
            SampledBackend(shots=64, seed=0),
            NoisyBackend(make_device(), seed=0),
        ):
            assert backend.run_batch([]) == []
            assert backend.ancilla_zero_probabilities([]).shape == (0,)

    def test_base_class_run_batch_loops_run(self):
        class CountingBackend(Backend):
            def __init__(self):
                self.calls = 0
                self._inner = IdealBackend()

            def run(self, circuit, shots=None):
                self.calls += 1
                return self._inner.run(circuit, shots=shots)

        backend = CountingBackend()
        circuits = [rotation_circuit([0.1, 0.2, 0.3]), rotation_circuit([0.4, 0.5, 0.6])]
        results = backend.run_batch(circuits, shots=None)
        assert backend.calls == 2
        assert len(results) == 2

    def test_noisy_batch_seed_matches_per_circuit_loop(self):
        rng = np.random.default_rng(8)
        circuits = [rotation_circuit(rng.uniform(0, np.pi, 3)) for _ in range(4)]
        batched = NoisyBackend(make_device(), seed=3).run_batch(circuits, shots=200)
        loop_backend = NoisyBackend(make_device(), seed=3)
        looped = [loop_backend.run(circuit, shots=200) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]

    def test_noisy_batch_exact_probabilities_match_loop(self):
        rng = np.random.default_rng(12)
        circuits = [rotation_circuit(rng.uniform(0, np.pi, 3)) for _ in range(5)]
        batched = NoisyBackend(make_device(), seed=0).run_batch(circuits, shots=None)
        loop_backend = NoisyBackend(make_device(), seed=0)
        for circuit, result in zip(circuits, batched):
            single = loop_backend.run(circuit, shots=None)
            assert set(result.probabilities) == set(single.probabilities)
            for key, value in single.probabilities.items():
                assert result.probabilities[key] == pytest.approx(value, abs=1e-12)

    def test_noisy_batch_is_vectorised_and_reports_metadata(self):
        """A structure-sharing sweep runs through the batched density engine."""
        rng = np.random.default_rng(13)
        circuits = [rotation_circuit(rng.uniform(0, np.pi, 3)) for _ in range(3)]
        backend = NoisyBackend(make_device(), seed=0)
        results = backend.run_batch(circuits, shots=100)
        for result in results:
            assert result.metadata["batched"] is True
            assert result.metadata["batch_size"] == 3
            assert result.metadata["backend"] == backend.name
            assert result.metadata["transpile"]["cx_count"] >= 0
            assert result.metadata["queue_latency_seconds"] == pytest.approx(42.0)
        # One symbolic transpilation, then flat re-binds.
        assert backend.transpile_cache_stats["misses"] == 1
        assert backend.transpile_cache_stats["hits"] == 2

    def test_noisy_batch_enforces_shot_limit(self):
        backend = NoisyBackend(make_device(), seed=0)
        with pytest.raises(BackendError):
            backend.run_batch([rotation_circuit([0.1, 0.2, 0.3])], shots=100_000)

    def test_noisy_batch_rejects_too_wide_circuit(self):
        backend = NoisyBackend(make_device(num_qubits=3), seed=0)
        with pytest.raises(BackendError):
            backend.run_batch([ghz_circuit(4)], shots=64)

    def test_noisy_batch_default_shots_match_run_default(self):
        circuit = rotation_circuit([0.4, 0.8, 1.2])
        batched = NoisyBackend(make_device(), seed=2).run_batch([circuit])
        single = NoisyBackend(make_device(), seed=2).run(circuit)
        assert batched[0].shots == single.shots == 1024
        assert batched[0].counts.data == single.counts.data


class TestNoisyBackendTranspileCache:
    def test_repeat_structures_hit_the_cache(self):
        backend = NoisyBackend(make_device(), seed=0)
        rng = np.random.default_rng(9)
        for _ in range(5):
            backend.run(rotation_circuit(rng.uniform(0, np.pi, 3)), shots=None)
        stats = backend.transpile_cache_stats
        assert stats["misses"] == 1
        assert stats["hits"] == 4

    def test_distinct_structures_miss_separately(self):
        backend = NoisyBackend(make_device(), seed=0)
        backend.run(rotation_circuit([0.1, 0.2, 0.3]), shots=None)
        backend.run(ghz_circuit(3), shots=None)
        assert backend.transpile_cache_stats["misses"] == 2

    def test_cache_hit_executes_identical_transpiled_circuit(self):
        """A cache hit must bind to the exact circuit a fresh transpile yields."""
        from repro.quantum.transpiler import transpile

        backend = NoisyBackend(make_device(), seed=1)
        rng = np.random.default_rng(10)
        first, second = (rotation_circuit(rng.uniform(0, np.pi, 3)) for _ in range(2))
        local_map = backend._local_coupling_map(first.num_qubits)
        backend._transpile_cache.transpile(first, local_map)  # prime (miss)
        hit = backend._transpile_cache.transpile(second, local_map)
        direct = transpile(second, local_map)
        assert backend.transpile_cache_stats["hits"] == 1
        assert len(hit.circuit.instructions) == len(direct.circuit.instructions)
        for cached_inst, direct_inst in zip(hit.circuit.instructions, direct.circuit.instructions):
            assert cached_inst.name == direct_inst.name
            assert cached_inst.qubits == direct_inst.qubits
            assert cached_inst.clbits == direct_inst.clbits
            np.testing.assert_allclose(
                [float(p) for p in cached_inst.params],
                [float(p) for p in direct_inst.params],
                atol=1e-15,
            )
        assert (hit.cx_count, hit.inserted_swaps, hit.depth) == (
            direct.cx_count,
            direct.inserted_swaps,
            direct.depth,
        )

    def test_region_cache_reuses_local_map(self):
        backend = NoisyBackend(make_device(num_qubits=5), seed=0)
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure_all()
        backend.run(qc, shots=None)
        first_map = backend._region_cache[2]
        backend.run(qc, shots=None)
        assert backend._region_cache[2] is first_map
