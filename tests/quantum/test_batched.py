"""Tests for the batched statevector engine and batched gate builders."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum import gates
from repro.quantum.batched import BatchedStatevector
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector


BATCH = 5
QUBITS = 3


def random_angles(count: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-np.pi, np.pi, count)


class TestBatchedGateBuilders:
    @pytest.mark.parametrize(
        "name,num_params",
        [
            ("rx", 1),
            ("ry", 1),
            ("rz", 1),
            ("r", 2),
            ("u3", 3),
            ("rxx", 1),
            ("ryy", 1),
            ("rzz", 1),
            ("crx", 1),
            ("cry", 1),
            ("crz", 1),
        ],
    )
    def test_batch_matches_scalar_factory(self, name, num_params):
        rng = np.random.default_rng(7)
        params = [rng.uniform(-np.pi, np.pi, BATCH) for _ in range(num_params)]
        stacked = gates.gate_matrix_batch(name, *params)
        assert stacked.shape[0] == BATCH
        for element in range(BATCH):
            scalar = gates.gate_matrix(name, *(p[element] for p in params))
            np.testing.assert_allclose(stacked[element], scalar, atol=1e-14)

    def test_scalars_broadcast(self):
        stacked = gates.gate_matrix_batch("r", np.array([0.1, 0.2, 0.3]), 0.5)
        assert stacked.shape == (3, 2, 2)
        np.testing.assert_allclose(stacked[1], gates.r_gate(0.2, 0.5), atol=1e-14)

    def test_parameter_free_gate_rejected(self):
        with pytest.raises(ValueError):
            gates.gate_matrix_batch("h")

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            gates.gate_matrix_batch("nope", np.zeros(2))

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(ValueError):
            gates.gate_matrix_batch("ry", np.zeros(2), np.zeros(2))

    def test_batched_matrices_are_unitary(self):
        for matrix in gates.gate_matrix_batch("cry", random_angles(BATCH)):
            assert gates.is_unitary(matrix)

    def test_scalar_only_gate_falls_back_to_stacking(self, monkeypatch):
        monkeypatch.delitem(gates._GATE_BATCH_FACTORIES, "ry")
        stacked = gates.gate_matrix_batch("ry", np.array([0.1, 0.2]))
        assert stacked.shape == (2, 2, 2)
        np.testing.assert_allclose(stacked[1], gates.ry(0.2), atol=1e-14)


class TestBatchedStatevectorBasics:
    def test_initial_state(self):
        state = BatchedStatevector(BATCH, QUBITS)
        amplitudes = state.amplitudes
        assert amplitudes.shape == (BATCH, 2**QUBITS)
        np.testing.assert_allclose(amplitudes[:, 0], 1.0)
        np.testing.assert_allclose(state.norms(), np.ones(BATCH), atol=1e-12)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SimulationError):
            BatchedStatevector(0, 2)
        with pytest.raises(SimulationError):
            BatchedStatevector(3, 0)

    def test_from_amplitudes_validates_shape(self):
        with pytest.raises(SimulationError):
            BatchedStatevector.from_amplitudes(np.ones(4, dtype=complex))
        with pytest.raises(SimulationError):
            BatchedStatevector.from_amplitudes(np.ones((2, 3), dtype=complex))

    def test_from_statevectors_round_trip(self):
        singles = [Statevector(np.eye(4)[i], normalize=True) for i in range(3)]
        batch = BatchedStatevector.from_statevectors(singles)
        for index, single in enumerate(singles):
            assert batch.statevector(index).fidelity(single) == pytest.approx(1.0)

    def test_statevector_index_bounds(self):
        state = BatchedStatevector(2, 1)
        with pytest.raises(SimulationError):
            state.statevector(2)


class TestBatchedApplyMatrix:
    def test_shared_matrix_matches_per_sample_evolution(self):
        rng = np.random.default_rng(3)
        raw = rng.normal(size=(BATCH, 2**QUBITS)) + 1j * rng.normal(size=(BATCH, 2**QUBITS))
        raw /= np.linalg.norm(raw, axis=1, keepdims=True)
        batch = BatchedStatevector.from_amplitudes(raw)
        batch.apply_matrix(gates.HADAMARD, (1,))
        batch.apply_matrix(gates.CNOT, (0, 2))
        for element in range(BATCH):
            single = Statevector(raw[element])
            single.apply_matrix(gates.HADAMARD, (1,))
            single.apply_matrix(gates.CNOT, (0, 2))
            np.testing.assert_allclose(
                batch.amplitudes[element], single.data, atol=1e-12
            )

    def test_per_element_matrices_match_loop(self):
        thetas = random_angles(BATCH, seed=11)
        batch = BatchedStatevector(BATCH, QUBITS)
        batch.apply_matrix(gates.ry_batch(thetas), (0,))
        batch.apply_matrix(gates.cry_batch(-thetas), (0, 2))
        for element in range(BATCH):
            single = Statevector(QUBITS)
            single.apply_matrix(gates.ry(thetas[element]), (0,))
            single.apply_matrix(gates.cry(-thetas[element]), (0, 2))
            np.testing.assert_allclose(
                batch.amplitudes[element], single.data, atol=1e-12
            )

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(SimulationError):
            BatchedStatevector(2, 2).apply_matrix(gates.CNOT, (0, 0))

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(SimulationError):
            BatchedStatevector(2, 2).apply_matrix(gates.HADAMARD, (2,))

    def test_batch_size_mismatch_rejected(self):
        matrices = gates.ry_batch(random_angles(3))
        with pytest.raises(SimulationError):
            BatchedStatevector(2, 2).apply_matrix(matrices, (0,))

    def test_shared_matrix_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            BatchedStatevector(2, 2).apply_matrix(gates.HADAMARD, (0, 1))


class TestBatchedEvolveAndProgram:
    def test_evolve_matches_per_sample_statevector(self):
        circuit = QuantumCircuit(QUBITS)
        circuit.h(0).ry(0.4, 1).cx(0, 2).rz(-0.7, 2).cry(1.1, 1, 2)
        batch = BatchedStatevector(BATCH, QUBITS).evolve(circuit)
        single = Statevector(QUBITS).evolve(circuit)
        for element in range(BATCH):
            np.testing.assert_allclose(batch.amplitudes[element], single.data, atol=1e-12)

    def test_evolve_rejects_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        with pytest.raises(SimulationError):
            BatchedStatevector(2, 1).evolve(circuit)

    def test_apply_program_mixed_slots(self):
        program = [
            ("h", (0,), ()),
            ("ry", (0,), (("index", 0),)),
            ("rz", (1,), (("value", 0.3),)),
            ("cry", (0, 1), (("index", 1),)),
        ]
        matrix = np.random.default_rng(5).uniform(-np.pi, np.pi, (BATCH, 2))
        batch = BatchedStatevector(BATCH, 2).apply_program(program, matrix)
        for element in range(BATCH):
            single = Statevector(2)
            single.apply_matrix(gates.HADAMARD, (0,))
            single.apply_matrix(gates.ry(matrix[element, 0]), (0,))
            single.apply_matrix(gates.rz(0.3), (1,))
            single.apply_matrix(gates.cry(matrix[element, 1]), (0, 1))
            np.testing.assert_allclose(batch.amplitudes[element], single.data, atol=1e-12)

    def test_apply_program_validates_parameter_matrix(self):
        state = BatchedStatevector(2, 1)
        with pytest.raises(SimulationError):
            state.apply_program([], np.zeros(3))
        with pytest.raises(SimulationError):
            state.apply_program([], np.zeros((3, 1)))


class TestBatchedProbabilitiesAndFidelities:
    def make_batch(self):
        thetas = random_angles(BATCH, seed=23)
        batch = BatchedStatevector(BATCH, QUBITS)
        batch.apply_matrix(gates.ry_batch(thetas), (0,))
        batch.apply_matrix(gates.HADAMARD, (2,))
        batch.apply_matrix(gates.cry_batch(2 * thetas), (0, 1))
        return batch

    def test_probabilities_match_per_sample(self):
        batch = self.make_batch()
        for qubits in (None, [0], [2, 0], [1, 2]):
            stacked = batch.probabilities(qubits)
            for element in range(BATCH):
                expected = batch.statevector(element).probabilities(qubits)
                np.testing.assert_allclose(stacked[element], expected, atol=1e-12)

    def test_duplicate_marginal_qubits_rejected(self):
        with pytest.raises(SimulationError):
            self.make_batch().probabilities([0, 0])

    def test_fidelities_match_per_sample(self):
        batch = self.make_batch()
        rng = np.random.default_rng(29)
        kets = rng.normal(size=(4, 2**QUBITS)) + 1j * rng.normal(size=(4, 2**QUBITS))
        kets /= np.linalg.norm(kets, axis=1, keepdims=True)
        matrix = batch.fidelities(kets)
        assert matrix.shape == (BATCH, 4)
        for element in range(BATCH):
            single = batch.statevector(element)
            for sample in range(4):
                expected = single.fidelity(Statevector(kets[sample]))
                assert matrix[element, sample] == pytest.approx(expected, abs=1e-12)

    def test_single_ket_inner(self):
        batch = self.make_batch()
        ket = np.zeros(2**QUBITS, dtype=complex)
        ket[0] = 1.0
        overlaps = batch.inner(ket)
        assert overlaps.shape == (BATCH,)
        for element in range(BATCH):
            assert overlaps[element] == pytest.approx(
                np.conj(batch.statevector(element).data[0]), abs=1e-12
            )

    def test_inner_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            self.make_batch().inner(np.ones(3, dtype=complex))
