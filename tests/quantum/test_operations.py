"""Tests for circuit instructions and symbolic parameters."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.quantum.operations import (
    Instruction,
    Parameter,
    ScaledParameter,
    barrier,
    gate,
    measure,
    reset,
)


class TestParameter:
    def test_equality_by_name(self):
        assert Parameter("theta") == Parameter("theta")
        assert Parameter("theta") != Parameter("phi")

    def test_hashable(self):
        assert len({Parameter("a"), Parameter("a"), Parameter("b")}) == 2


class TestInstructionValidation:
    def test_gate_with_wrong_qubit_count(self):
        with pytest.raises(CircuitError):
            Instruction(name="cx", qubits=(0,))

    def test_gate_with_wrong_param_count(self):
        with pytest.raises(CircuitError):
            Instruction(name="ry", qubits=(0,), params=())

    def test_unknown_instruction(self):
        with pytest.raises(CircuitError):
            Instruction(name="foo", qubits=(0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Instruction(name="cx", qubits=(1, 1))

    def test_measure_requires_matching_clbits(self):
        with pytest.raises(CircuitError):
            Instruction(name="measure", qubits=(0, 1), clbits=(0,))

    def test_barrier_accepts_any_qubits(self):
        Instruction(name="barrier", qubits=(0, 1, 2))


class TestInstructionProperties:
    def test_is_gate(self):
        assert gate("h", (0,)).is_gate
        assert not measure(0, 0).is_gate

    def test_is_measurement(self):
        assert measure(0, 0).is_measurement
        assert not reset(0).is_measurement

    def test_parameterised_detection(self):
        inst = gate("ry", (0,), Parameter("t"))
        assert inst.is_parameterized
        assert inst.free_parameters == (Parameter("t"),)

    def test_bound_instruction_not_parameterised(self):
        assert not gate("ry", (0,), 0.4).is_parameterized

    def test_num_qubits(self):
        assert gate("cswap", (0, 1, 2)).num_qubits == 3


class TestBindingAndMatrices:
    def test_bind_replaces_named_parameter(self):
        theta = Parameter("theta")
        inst = gate("ry", (0,), theta)
        bound = inst.bind({theta: 0.7})
        assert not bound.is_parameterized
        assert bound.params == (0.7,)

    def test_partial_binding_keeps_missing_symbols(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        inst = gate("r", (0,), theta, phi)
        partially = inst.bind({theta: 0.5})
        assert partially.free_parameters == (phi,)

    def test_bind_on_bound_instruction_is_identity(self):
        inst = gate("ry", (0,), 0.2)
        assert inst.bind({}) is inst

    def test_matrix_of_bound_gate(self):
        from repro.quantum import gates as gate_lib

        np.testing.assert_allclose(gate("ry", (0,), 0.3).matrix(), gate_lib.ry(0.3))

    def test_matrix_of_unbound_gate_raises(self):
        with pytest.raises(CircuitError):
            gate("ry", (0,), Parameter("t")).matrix()

    def test_matrix_of_measurement_raises(self):
        with pytest.raises(CircuitError):
            measure(0, 0).matrix()

    def test_remap(self):
        inst = gate("cx", (0, 1)).remap({0: 3, 1: 5})
        assert inst.qubits == (3, 5)


class TestConvenienceConstructors:
    def test_measure_constructor(self):
        inst = measure(2, 1)
        assert inst.qubits == (2,)
        assert inst.clbits == (1,)

    def test_reset_constructor(self):
        assert reset(1).name == "reset"

    def test_barrier_constructor(self):
        assert barrier((0, 1)).qubits == (0, 1)

    def test_gate_label(self):
        assert gate("ry", (0,), 0.1, label="data").label == "data"


class TestScaledParameter:
    def test_counts_as_symbolic(self):
        theta = Parameter("theta")
        inst = gate("ry", (0,), ScaledParameter(theta, 0.5))
        assert inst.is_parameterized is True
        assert inst.free_parameters == (theta,)

    def test_bind_evaluates_the_scale(self):
        theta = Parameter("theta")
        inst = gate("ry", (0,), ScaledParameter(theta, -0.5))
        bound = inst.bind({theta: 1.2})
        assert bound.is_parameterized is False
        assert bound.params[0] == pytest.approx(-0.6)

    def test_partial_binding_leaves_scaled_parameter_symbolic(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        inst = gate("r", (0,), ScaledParameter(theta, 2.0), phi)
        partially = inst.bind({phi: 0.4})
        assert partially.is_parameterized is True
        assert partially.free_parameters == (theta,)

    def test_scaled_folds_coefficients(self):
        theta = Parameter("theta")
        scaled = ScaledParameter(theta, 0.5).scaled(-2.0)
        assert scaled.coefficient == pytest.approx(-1.0)
        assert scaled.evaluate(3.0) == pytest.approx(-3.0)

    def test_matrix_of_scaled_parameter_raises(self):
        with pytest.raises(CircuitError):
            gate("ry", (0,), ScaledParameter(Parameter("t"), 0.5)).matrix()

    def test_replace_params_preserves_layout(self):
        inst = gate("cry", (0, 1), 0.7, label="layer")
        clone = inst.replace_params((0.9,))
        assert clone.params == (0.9,)
        assert clone.qubits == (0, 1)
        assert clone.label == "layer"
        assert clone.name == "cry"

    def test_replace_params_rejects_wrong_count(self):
        with pytest.raises(CircuitError):
            gate("ry", (0,), 0.1).replace_params((0.1, 0.2))
