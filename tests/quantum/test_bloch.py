"""Tests for Bloch-sphere utilities."""

import math

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.bloch import (
    BlochVector,
    bloch_vector,
    bloch_vector_from_angles,
    bloch_vector_from_density_matrix,
    bloch_vectors,
    expectation_triplet,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector


class TestBlochVector:
    def test_ground_state_points_up(self):
        vec = bloch_vector(Statevector(1))
        assert vec.z == pytest.approx(1.0)
        assert vec.length == pytest.approx(1.0)

    def test_excited_state_points_down(self):
        state = Statevector(1)
        state.apply_matrix(gates.PAULI_X, (0,))
        assert bloch_vector(state).z == pytest.approx(-1.0)

    def test_plus_state_points_along_x(self):
        state = Statevector(1)
        state.apply_matrix(gates.HADAMARD, (0,))
        vec = bloch_vector(state)
        assert vec.x == pytest.approx(1.0)
        assert vec.z == pytest.approx(0.0, abs=1e-12)

    def test_ry_rotation_angle(self):
        theta = 0.9
        state = Statevector(1)
        state.apply_matrix(gates.ry(theta), (0,))
        vec = bloch_vector(state)
        assert vec.polar_angle == pytest.approx(theta)

    def test_rz_sets_azimuth(self):
        state = Statevector(1)
        state.apply_matrix(gates.ry(math.pi / 2), (0,))
        state.apply_matrix(gates.rz(0.7), (0,))
        assert bloch_vector(state).azimuthal_angle == pytest.approx(0.7)

    def test_angle_to_self_is_zero(self):
        vec = BlochVector(0.0, 0.0, 1.0)
        assert vec.angle_to(vec) == pytest.approx(0.0)

    def test_angle_between_orthogonal_axes(self):
        assert BlochVector(1, 0, 0).angle_to(BlochVector(0, 0, 1)) == pytest.approx(math.pi / 2)

    def test_as_array(self):
        np.testing.assert_allclose(BlochVector(0.1, 0.2, 0.3).as_array(), [0.1, 0.2, 0.3])


class TestMultiQubitReduction:
    def test_entangled_qubit_has_short_vector(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        state = Statevector(2).evolve(qc)
        vec = bloch_vector(state, 0)
        assert vec.length == pytest.approx(0.0, abs=1e-9)

    def test_product_state_qubits_independent(self):
        qc = QuantumCircuit(2)
        qc.ry(0.6, 0)
        state = Statevector(2).evolve(qc)
        vectors = bloch_vectors(state)
        assert vectors[0].polar_angle == pytest.approx(0.6)
        assert vectors[1].z == pytest.approx(1.0)

    def test_density_matrix_input(self):
        dm = DensityMatrix(1)
        assert bloch_vector(dm).z == pytest.approx(1.0)

    def test_expectation_triplet(self):
        triplet = expectation_triplet(Statevector(1))
        np.testing.assert_allclose(triplet, [0.0, 0.0, 1.0], atol=1e-12)


class TestConversions:
    def test_from_angles_matches_state(self):
        theta, phi = 1.2, 0.4
        from_angles = bloch_vector_from_angles(theta, phi)
        state = Statevector(1)
        state.apply_matrix(gates.ry(theta), (0,))
        state.apply_matrix(gates.rz(phi), (0,))
        from_state = bloch_vector(state)
        assert from_angles.angle_to(from_state) == pytest.approx(0.0, abs=1e-9)

    def test_from_density_matrix_requires_2x2(self):
        with pytest.raises(ValueError):
            bloch_vector_from_density_matrix(np.eye(4) / 4)

    def test_maximally_mixed_has_zero_vector(self):
        vec = bloch_vector_from_density_matrix(np.eye(2) / 2)
        assert vec.length == pytest.approx(0.0)
