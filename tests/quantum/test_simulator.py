"""Tests for the statevector and density-matrix simulators."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel, ReadoutError
from repro.quantum.operations import Parameter
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator


def bell_circuit() -> QuantumCircuit:
    qc = QuantumCircuit(2, 2, name="bell")
    qc.h(0).cx(0, 1).measure_all()
    return qc


class TestStatevectorSimulator:
    def test_exact_probabilities(self):
        result = StatevectorSimulator(seed=0).run(bell_circuit())
        assert result.probabilities["00"] == pytest.approx(0.5)
        assert result.probabilities["11"] == pytest.approx(0.5)
        assert result.counts is None

    def test_sampled_counts(self):
        result = StatevectorSimulator(seed=0).run(bell_circuit(), shots=2000)
        assert result.counts.shots == 2000
        assert set(result.counts.data) <= {"00", "11"}

    def test_sampling_is_seed_reproducible(self):
        a = StatevectorSimulator(seed=5).run(bell_circuit(), shots=500).counts.data
        b = StatevectorSimulator(seed=5).run(bell_circuit(), shots=500).counts.data
        assert a == b

    def test_unbound_parameters_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.ry(Parameter("t"), 0).measure(0, 0)
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(qc)

    def test_shots_without_measurement_rejected(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(qc, shots=10)

    def test_no_measurement_returns_statevector(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        result = StatevectorSimulator().run(qc)
        assert result.statevector is not None
        assert result.probabilities == {}

    def test_partial_measurement_maps_to_clbits(self):
        qc = QuantumCircuit(2, 2)
        qc.x(1)
        qc.measure(1, 0)  # measure qubit 1 into clbit 0
        result = StatevectorSimulator().run(qc)
        # Clbit 0 reads 1, clbit 1 untouched (0): string "10".
        assert result.probabilities["10"] == pytest.approx(1.0)

    def test_marginal_probability_helper(self):
        result = StatevectorSimulator(seed=0).run(bell_circuit())
        assert result.marginal_probability(0, 1) == pytest.approx(0.5)

    def test_reset_handled(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0).reset(0).measure(0, 0)
        result = StatevectorSimulator(seed=0).run(qc)
        assert result.probabilities["0"] == pytest.approx(1.0)

    def test_initial_state_width_checked(self):
        from repro.quantum.statevector import Statevector

        with pytest.raises(SimulationError):
            StatevectorSimulator().run(bell_circuit(), initial_state=Statevector(1))

    def test_statevector_helper_strips_measurements(self):
        sv = StatevectorSimulator().statevector(bell_circuit())
        assert sv.num_qubits == 2
        np.testing.assert_allclose(sv.probabilities(), [0.5, 0, 0, 0.5], atol=1e-12)


class TestDensityMatrixSimulator:
    def test_ideal_matches_statevector(self):
        noiseless = DensityMatrixSimulator(seed=0).run(bell_circuit(), shots=None)
        exact = StatevectorSimulator().run(bell_circuit())
        for key, value in exact.probabilities.items():
            assert noiseless.probabilities[key] == pytest.approx(value, abs=1e-10)

    def test_noise_produces_error_outcomes(self):
        noise = NoiseModel.from_error_rates(0.01, 0.05)
        result = DensityMatrixSimulator(noise, seed=0).run(bell_circuit(), shots=None)
        # Depolarising noise leaks probability into the odd-parity outcomes.
        assert result.probabilities.get("01", 0.0) > 0.0
        assert result.probabilities.get("10", 0.0) > 0.0

    def test_readout_error_flips_deterministic_outcome(self):
        noise = NoiseModel()
        noise.add_readout_error(ReadoutError(0.1, 0.1))
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        result = DensityMatrixSimulator(noise, seed=0).run(qc, shots=None)
        assert result.probabilities["1"] == pytest.approx(0.1)

    def test_probabilities_remain_normalised_under_noise(self):
        noise = NoiseModel.from_error_rates(0.02, 0.08, readout_error=0.05)
        result = DensityMatrixSimulator(noise, seed=0).run(bell_circuit(), shots=None)
        assert sum(result.probabilities.values()) == pytest.approx(1.0)

    def test_unbound_parameters_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.ry(Parameter("t"), 0).measure(0, 0)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run(qc)

    def test_metadata_reports_noise_flag(self):
        noisy = DensityMatrixSimulator(NoiseModel.from_error_rates(0.01, 0.02))
        assert noisy.run(bell_circuit(), shots=16).metadata["noisy"] is True
        ideal = DensityMatrixSimulator()
        assert ideal.run(bell_circuit(), shots=16).metadata["noisy"] is False


class TestDeferredMeasurementGuards:
    """Regression tests: deferred measurement must reject what it cannot model."""

    def test_gate_after_measurement_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        qc.x(0)
        with pytest.raises(SimulationError, match="already-measured"):
            StatevectorSimulator().run(qc)

    def test_gate_on_other_qubit_after_measurement_allowed(self):
        qc = QuantumCircuit(2, 1)
        qc.h(0).measure(0, 0)
        qc.x(1)
        result = StatevectorSimulator().run(qc)
        assert result.probabilities["0"] == pytest.approx(0.5)

    def test_double_measurement_rejected(self):
        qc = QuantumCircuit(1, 2)
        qc.h(0).measure(0, 0)
        qc.measure(0, 1)
        with pytest.raises(SimulationError, match="measured more than"):
            StatevectorSimulator().run(qc)

    def test_reset_after_measurement_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        qc.reset(0)
        with pytest.raises(SimulationError, match="already-measured"):
            StatevectorSimulator().run(qc)

    def test_density_matrix_gate_after_measurement_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        qc.x(0)
        with pytest.raises(SimulationError, match="already-measured"):
            DensityMatrixSimulator().run(qc, shots=None)

    def test_density_matrix_double_measurement_rejected(self):
        qc = QuantumCircuit(1, 2)
        qc.h(0).measure(0, 0)
        qc.measure(0, 1)
        with pytest.raises(SimulationError, match="measured more than"):
            DensityMatrixSimulator().run(qc, shots=None)
