"""Tests for the backends' compiled-program sweep path
(:meth:`~repro.quantum.backend.Backend.sweep_zero_probabilities`)."""

import numpy as np
import pytest

from repro.exceptions import BackendError
from repro.hardware import IBMQBackend
from repro.quantum.backend import IdealBackend, SampledBackend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.program import TilePlan
from repro.quantum.register import ClassicalRegister, QuantumRegister


def discriminator(angles) -> QuantumCircuit:
    """Minimal SWAP-test discriminator: ancilla + two 1-qubit registers."""
    qreg = QuantumRegister(3, "q")
    creg = ClassicalRegister(1, "c")
    circuit = QuantumCircuit(qreg, creg, name="disc")
    circuit.h(0)
    circuit.ry(angles[0], 1).rz(angles[1], 1)
    circuit.ry(angles[2], 2).rz(angles[3], 2)
    circuit.cswap(0, 1, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    return circuit


def sweep(count, seed):
    rng = np.random.default_rng(seed)
    return [discriminator(rng.uniform(0, np.pi, 4)) for _ in range(count)]


class TestStatevectorBackends:
    def test_ideal_sweep_matches_batch_path_exact(self):
        circuits = sweep(6, seed=0)
        backend = IdealBackend()
        swept = backend.sweep_zero_probabilities(iter(circuits), shots=None)
        batched = IdealBackend().ancilla_zero_probabilities(circuits, shots=None)
        np.testing.assert_allclose(swept, batched, atol=1e-12)

    def test_sampled_sweep_seed_matches_batch_path(self):
        circuits = sweep(5, seed=1)
        swept = SampledBackend(shots=400, seed=7).sweep_zero_probabilities(
            iter(circuits)
        )
        batched = SampledBackend(shots=400, seed=7).ancilla_zero_probabilities(circuits)
        np.testing.assert_array_equal(swept, batched)

    def test_tile_plan_does_not_change_draws(self):
        circuits = sweep(6, seed=2)
        plan = TilePlan(rows=6, samples=1, row_tile=2, sample_tile=1)
        tiled = SampledBackend(shots=300, seed=5).sweep_zero_probabilities(
            iter(circuits), tile_plan=plan
        )
        whole = SampledBackend(shots=300, seed=5).sweep_zero_probabilities(
            iter(circuits)
        )
        np.testing.assert_array_equal(tiled, whole)

    def test_empty_sweep(self):
        assert IdealBackend().sweep_zero_probabilities([], shots=None).shape == (0,)

    def test_structure_mismatch_rejected(self):
        other = QuantumCircuit(3, 1, name="bell")
        other.h(0).cx(0, 1).measure(0, 0)
        with pytest.raises(BackendError):
            IdealBackend().sweep_zero_probabilities(
                sweep(2, seed=3) + [other], shots=None
            )

    def test_shots_validated(self):
        with pytest.raises(BackendError):
            IdealBackend().sweep_zero_probabilities(sweep(2, seed=4), shots=0)


class TestNoisyBackend:
    def test_sweep_seed_matches_batch_path(self):
        circuits = sweep(4, seed=5)
        swept = IBMQBackend("ibmq_london", seed=13).sweep_zero_probabilities(
            iter(circuits), shots=256
        )
        batched = IBMQBackend("ibmq_london", seed=13).ancilla_zero_probabilities(
            circuits, shots=256
        )
        np.testing.assert_array_equal(swept, batched)

    def test_sweep_ledgers_every_element_with_transpile_stats(self):
        circuits = sweep(3, seed=6)
        backend = IBMQBackend("ibmq_london", seed=1)
        backend.sweep_zero_probabilities(circuits, shots=64)
        assert backend.ledger.num_jobs == 3
        for record in backend.ledger.records:
            assert record.shots == 64
            assert record.cx_count > 0
            assert record.circuit_name == "disc_basis_routed"
        assert backend.last_transpile_stats["cx_count"] > 0

    def test_sweep_structure_mismatch_rejected(self):
        other = QuantumCircuit(3, 1, name="bell")
        other.h(0).cx(0, 1).measure(0, 0)
        backend = IBMQBackend("ibmq_london", seed=2)
        with pytest.raises(BackendError):
            backend.sweep_zero_probabilities(sweep(2, seed=7) + [other], shots=64)

    def test_sweep_respects_device_width(self):
        wide = QuantumCircuit(9, 1, name="too_wide")
        wide.h(0).measure(0, 0)
        backend = IBMQBackend("ibmq_london", seed=0)
        with pytest.raises(BackendError):
            backend.sweep_zero_probabilities([wide], shots=64)

    def test_empty_sweep(self):
        backend = IBMQBackend("ibmq_london", seed=0)
        assert backend.sweep_zero_probabilities([], shots=64).shape == (0,)
        assert backend.ledger.num_jobs == 0

    def test_tiled_sweep_seed_matches_whole(self):
        circuits = sweep(4, seed=8)
        plan = TilePlan(rows=4, samples=1, row_tile=1, sample_tile=1)
        tiled = IBMQBackend("ibmq_london", seed=21).sweep_zero_probabilities(
            iter(circuits), shots=128, tile_plan=plan
        )
        whole = IBMQBackend("ibmq_london", seed=21).sweep_zero_probabilities(
            iter(circuits), shots=128
        )
        np.testing.assert_array_equal(tiled, whole)
