"""Tests for the gate matrix library."""

import math

import numpy as np
import pytest

from repro.quantum import gates


ALL_PARAMETERISED = ["rx", "ry", "rz", "rxx", "ryy", "rzz", "crx", "cry", "crz"]
ALL_FIXED = ["id", "x", "y", "z", "h", "s", "t", "cx", "cz", "swap", "cswap"]


class TestUnitarity:
    @pytest.mark.parametrize("name", ALL_FIXED)
    def test_fixed_gates_are_unitary(self, name):
        assert gates.is_unitary(gates.gate_matrix(name))

    @pytest.mark.parametrize("name", ALL_PARAMETERISED)
    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, 2.5])
    def test_parameterised_gates_are_unitary(self, name, theta):
        assert gates.is_unitary(gates.gate_matrix(name, theta))

    def test_r_gate_unitary(self):
        assert gates.is_unitary(gates.r_gate(1.1, 0.4))

    def test_u3_unitary(self):
        assert gates.is_unitary(gates.u3(0.3, 1.2, -0.7))


class TestSingleQubitGates:
    def test_hadamard_squares_to_identity(self):
        np.testing.assert_allclose(gates.HADAMARD @ gates.HADAMARD, np.eye(2), atol=1e-12)

    def test_pauli_anticommutation(self):
        anticommutator = gates.PAULI_X @ gates.PAULI_Y + gates.PAULI_Y @ gates.PAULI_X
        np.testing.assert_allclose(anticommutator, np.zeros((2, 2)), atol=1e-12)

    def test_rotation_at_zero_is_identity(self):
        for rot in (gates.rx, gates.ry, gates.rz):
            np.testing.assert_allclose(rot(0.0), np.eye(2), atol=1e-12)

    def test_rx_equals_general_rotation_phi_zero(self):
        np.testing.assert_allclose(gates.rx(0.7), gates.r_gate(0.7, 0.0), atol=1e-12)

    def test_ry_equals_general_rotation_phi_half_pi(self):
        np.testing.assert_allclose(gates.ry(0.7), gates.r_gate(0.7, math.pi / 2), atol=1e-12)

    def test_ry_pi_maps_zero_to_one(self):
        state = gates.ry(math.pi) @ np.array([1.0, 0.0])
        np.testing.assert_allclose(np.abs(state) ** 2, [0.0, 1.0], atol=1e-12)

    def test_ry_angle_encodes_probability(self):
        # RY(2 asin(sqrt(x))) |0> has P(|1>) = x — the paper's encoding map.
        x = 0.3
        theta = 2 * math.asin(math.sqrt(x))
        state = gates.ry(theta) @ np.array([1.0, 0.0])
        assert abs(state[1]) ** 2 == pytest.approx(x)

    def test_rz_is_diagonal(self):
        matrix = gates.rz(1.3)
        assert matrix[0, 1] == 0 and matrix[1, 0] == 0

    def test_s_squared_is_z(self):
        np.testing.assert_allclose(gates.S_GATE @ gates.S_GATE, gates.PAULI_Z, atol=1e-12)

    def test_t_squared_is_s(self):
        np.testing.assert_allclose(gates.T_GATE @ gates.T_GATE, gates.S_GATE, atol=1e-12)

    def test_rotation_composition(self):
        np.testing.assert_allclose(
            gates.ry(0.4) @ gates.ry(0.6), gates.ry(1.0), atol=1e-12
        )


class TestTwoQubitGates:
    def test_cnot_flips_target_when_control_set(self):
        # |10> (control=1, target=0) -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        out = gates.CNOT @ state
        np.testing.assert_allclose(np.abs(out) ** 2, [0, 0, 0, 1], atol=1e-12)

    def test_cnot_leaves_target_when_control_clear(self):
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        out = gates.CNOT @ state
        np.testing.assert_allclose(np.abs(out) ** 2, [0, 1, 0, 0], atol=1e-12)

    def test_swap_exchanges_basis_states(self):
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        out = gates.SWAP @ state
        np.testing.assert_allclose(np.abs(out) ** 2, [0, 0, 1, 0], atol=1e-12)

    def test_cz_phases_only_eleven(self):
        np.testing.assert_allclose(np.diag(gates.CZ), [1, 1, 1, -1])

    def test_controlled_promotes_identity_to_identity(self):
        np.testing.assert_allclose(gates.controlled(gates.I2), np.eye(4), atol=1e-12)

    def test_controlled_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            gates.controlled(np.eye(3))

    def test_cry_acts_only_in_control_one_subspace(self):
        matrix = gates.cry(0.9)
        np.testing.assert_allclose(matrix[:2, :2], np.eye(2), atol=1e-12)
        np.testing.assert_allclose(matrix[2:, 2:], gates.ry(0.9), atol=1e-12)

    def test_rzz_diagonal_phases(self):
        theta = 0.8
        matrix = gates.rzz(theta)
        assert matrix[0, 0] == pytest.approx(np.exp(-1j * theta / 2))
        assert matrix[1, 1] == pytest.approx(np.exp(1j * theta / 2))
        assert matrix[3, 3] == pytest.approx(np.exp(-1j * theta / 2))

    def test_rxx_equals_hadamard_conjugated_rzz(self):
        theta = 0.7
        h2 = np.kron(gates.HADAMARD, gates.HADAMARD)
        np.testing.assert_allclose(h2 @ gates.rzz(theta) @ h2, gates.rxx(theta), atol=1e-12)

    def test_two_qubit_rotations_at_zero_are_identity(self):
        for rot in (gates.rxx, gates.ryy, gates.rzz):
            np.testing.assert_allclose(rot(0.0), np.eye(4), atol=1e-12)


class TestCSwap:
    def test_identity_when_control_clear(self):
        matrix = gates.cswap()
        np.testing.assert_allclose(matrix[:4, :4], np.eye(4), atol=1e-12)

    def test_swaps_targets_when_control_set(self):
        matrix = gates.cswap()
        # |1 01> (index 5) should map to |1 10> (index 6).
        state = np.zeros(8)
        state[5] = 1.0
        out = matrix @ state
        assert abs(out[6]) == pytest.approx(1.0)

    def test_involution(self):
        matrix = gates.cswap()
        np.testing.assert_allclose(matrix @ matrix, np.eye(8), atol=1e-12)


class TestGateFactory:
    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gates.gate_matrix("nope")

    def test_wrong_parameter_count_raises(self):
        with pytest.raises(ValueError):
            gates.gate_matrix("ry")
        with pytest.raises(ValueError):
            gates.gate_matrix("x", 0.3)

    def test_signatures_cover_all_factories(self):
        for name, (num_qubits, num_params) in gates.GATE_SIGNATURES.items():
            matrix = gates.gate_matrix(name, *([0.5] * num_params))
            assert matrix.shape == (2**num_qubits, 2**num_qubits)

    def test_is_unitary_rejects_non_square(self):
        assert not gates.is_unitary(np.zeros((2, 3)))

    def test_is_unitary_rejects_non_unitary(self):
        assert not gates.is_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))
