"""Tests for the SWAP test and fidelity helpers."""

import math

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum import gates
from repro.quantum.fidelity import (
    build_swap_test_circuit,
    fidelity_from_swap_test_probability,
    state_fidelity,
    swap_test_fidelity_exact,
    swap_test_fidelity_sampled,
    swap_test_probability_from_fidelity,
)
from repro.quantum.statevector import Statevector


def random_state(num_qubits: int, seed: int) -> Statevector:
    rng = np.random.default_rng(seed)
    state = Statevector(num_qubits)
    for qubit in range(num_qubits):
        state.apply_matrix(gates.ry(rng.uniform(0, np.pi)), (qubit,))
        state.apply_matrix(gates.rz(rng.uniform(0, 2 * np.pi)), (qubit,))
    if num_qubits > 1:
        state.apply_matrix(gates.CNOT, (0, 1))
    return state


class TestProbabilityConversion:
    def test_round_trip(self):
        for fidelity in (0.0, 0.3, 0.5, 1.0):
            p_zero = swap_test_probability_from_fidelity(fidelity)
            assert fidelity_from_swap_test_probability(p_zero) == pytest.approx(fidelity)

    def test_orthogonal_states_give_half(self):
        assert swap_test_probability_from_fidelity(0.0) == pytest.approx(0.5)

    def test_identical_states_give_one(self):
        assert swap_test_probability_from_fidelity(1.0) == pytest.approx(1.0)

    def test_noisy_probability_below_half_clipped(self):
        assert fidelity_from_swap_test_probability(0.45) == 0.0

    def test_invalid_fidelity_rejected(self):
        with pytest.raises(SimulationError):
            swap_test_probability_from_fidelity(1.5)

    def test_grossly_invalid_probability_rejected(self):
        """Regression: a non-probability P(0) must raise, not clip to a
        plausible fidelity — clipping would hide upstream normalisation bugs."""
        for bad in (1.5, -0.2, 2.0, float("nan"), float("inf"), -float("inf")):
            with pytest.raises(SimulationError):
                fidelity_from_swap_test_probability(bad)

    def test_small_tolerance_violations_still_clip(self):
        """Floating-point drift just past the boundaries stays valid."""
        assert fidelity_from_swap_test_probability(1.0 + 1e-12) == 1.0
        assert fidelity_from_swap_test_probability(-1e-12) == 0.0
        assert fidelity_from_swap_test_probability(0.45) == 0.0


class TestSwapTestCircuit:
    def test_default_layout(self):
        circuit = build_swap_test_circuit(3)
        assert circuit.num_qubits == 7
        assert circuit.count_ops()["cswap"] == 3
        assert circuit.count_ops()["h"] == 2
        assert circuit.count_ops()["measure"] == 1

    def test_invalid_width(self):
        with pytest.raises(SimulationError):
            build_swap_test_circuit(0)

    def test_custom_registers_must_match_width(self):
        with pytest.raises(SimulationError):
            build_swap_test_circuit(2, first_state_qubits=[1], second_state_qubits=[2, 3])

    def test_ancilla_colliding_with_state_register_rejected(self):
        """Regression: an overlapping ancilla silently built a corrupt circuit."""
        with pytest.raises(SimulationError):
            build_swap_test_circuit(2, ancilla=1)
        with pytest.raises(SimulationError):
            build_swap_test_circuit(2, ancilla=3)

    def test_overlapping_state_registers_rejected(self):
        with pytest.raises(SimulationError):
            build_swap_test_circuit(
                2, first_state_qubits=[1, 2], second_state_qubits=[2, 3]
            )

    def test_duplicate_indices_within_a_register_rejected(self):
        with pytest.raises(SimulationError):
            build_swap_test_circuit(
                2, first_state_qubits=[1, 1], second_state_qubits=[2, 3]
            )
        with pytest.raises(SimulationError):
            build_swap_test_circuit(
                2, first_state_qubits=[1, 2], second_state_qubits=[3, 3]
            )

    def test_negative_indices_rejected(self):
        with pytest.raises(SimulationError):
            build_swap_test_circuit(1, first_state_qubits=[-1], second_state_qubits=[2])

    def test_disjoint_custom_layout_still_allowed(self):
        circuit = build_swap_test_circuit(
            2, ancilla=4, first_state_qubits=[0, 1], second_state_qubits=[2, 3]
        )
        assert circuit.num_qubits == 5
        assert circuit.count_ops()["cswap"] == 2


class TestSwapTestAgreement:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3])
    def test_exact_swap_test_matches_direct_fidelity(self, num_qubits):
        a = random_state(num_qubits, seed=10 + num_qubits)
        b = random_state(num_qubits, seed=20 + num_qubits)
        direct = state_fidelity(a, b)
        via_swap = swap_test_fidelity_exact(a, b)
        assert via_swap == pytest.approx(direct, abs=1e-9)

    def test_identical_states(self):
        a = random_state(2, seed=3)
        assert swap_test_fidelity_exact(a, a.copy()) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        a = Statevector.from_label("00")
        b = Statevector.from_label("11")
        assert swap_test_fidelity_exact(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            swap_test_fidelity_exact(Statevector(1), Statevector(2))

    def test_sampled_estimate_converges(self):
        a = random_state(2, seed=1)
        b = random_state(2, seed=2)
        direct = state_fidelity(a, b)
        estimate = swap_test_fidelity_sampled(a, b, shots=20000, rng=np.random.default_rng(0))
        assert estimate == pytest.approx(direct, abs=0.03)

    def test_sampled_requires_positive_shots(self):
        with pytest.raises(SimulationError):
            swap_test_fidelity_sampled(Statevector(1), Statevector(1), shots=0)

    def test_single_qubit_overlap_formula(self):
        theta = 1.1
        a = Statevector(1)
        b = Statevector(1)
        b.apply_matrix(gates.ry(theta), (0,))
        assert swap_test_fidelity_exact(a, b) == pytest.approx(math.cos(theta / 2) ** 2)


class TestVectorisedProbabilityConversion:
    def test_matches_scalar_conversion(self):
        from repro.quantum.fidelity import fidelities_from_swap_test_probabilities

        values = np.array([0.5, 0.45, 0.75, 1.0, 1.0 + 1e-12, -1e-12])
        vectorised = fidelities_from_swap_test_probabilities(values)
        scalars = [fidelity_from_swap_test_probability(p) for p in values]
        np.testing.assert_array_equal(vectorised, scalars)

    def test_invalid_entries_rejected(self):
        from repro.quantum.fidelity import fidelities_from_swap_test_probabilities

        for bad in ([0.5, 1.5], [0.5, -0.2], [0.5, float("nan")]):
            with pytest.raises(SimulationError):
                fidelities_from_swap_test_probabilities(bad)
