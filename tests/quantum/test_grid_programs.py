"""Shared-prefix grid execution of compiled SweepPrograms.

Unit-level coverage of the whole-grid executor machinery:
``TilePlan.for_grid_sweep`` geometry, ``broadcast_to`` on both batched
state classes, prefix-shared tile evolution (bit-identical to the plain
tiled path), and the fail-closed VER403 certification gate.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import Parameter, QuantumCircuit
from repro.quantum.program import (
    DensitySuperoperatorEngine,
    StatevectorEngine,
    SweepProgram,
    TilePlan,
)


def grid_program(num_trained: int = 2, num_data: int = 2):
    """Two-qubit program: trained columns, a seam barrier, data columns."""
    trained = [Parameter(f"theta_{i}") for i in range(num_trained)]
    data = [Parameter(f"x_{i}") for i in range(num_data)]
    qc = QuantumCircuit(2, 2, name="grid")
    qc.h(0)
    qc.ry(trained[0], 0)
    qc.rz(trained[1], 0)
    qc.barrier(0, 1)
    qc.ry(data[0], 1)
    qc.rz(data[1], 1)
    qc.cx(0, 1)
    qc.measure_all()
    return SweepProgram.compile(
        qc, bind_floats=False, parameters=trained + data, name="grid"
    )


def grid_bindings(rows: int = 3, samples: int = 4, seed: int = 5):
    """Row-major grid: trained columns constant within each row's block."""
    rng = np.random.default_rng(seed)
    trained = rng.uniform(0, np.pi, size=(rows, 2))
    data = rng.uniform(0, np.pi, size=(samples, 2))
    return np.hstack(
        [np.repeat(trained, samples, axis=0), np.tile(data, (rows, 1))]
    )


class TestForGridSweep:
    def test_single_row_tiles_with_shared_prefix(self):
        plan = TilePlan.for_grid_sweep(8, 16, 4, 64)
        assert plan.shared_prefix is True
        assert plan.row_tile == 1
        assert plan.sample_tile == 16  # budget holds 16 elements
        assert plan.max_amplitudes == 64

    def test_sample_tile_clamped_by_budget(self):
        plan = TilePlan.for_grid_sweep(4, 100, 4, 64)
        assert plan.sample_tile == 16
        assert plan.num_tiles == 4 * 7  # ceil(100 / 16) tiles per row

    def test_budget_below_one_element_still_progresses(self):
        plan = TilePlan.for_grid_sweep(2, 3, 16, 8)
        assert plan.sample_tile == 1

    def test_default_plans_do_not_claim_sharing(self):
        assert TilePlan.for_circuit_sweep(4, 4, 4, 64).shared_prefix is False
        assert TilePlan(rows=2, samples=2, row_tile=1, sample_tile=2).shared_prefix is False


class TestBroadcastTo:
    @pytest.mark.parametrize("engine", [StatevectorEngine(), DensitySuperoperatorEngine()])
    def test_broadcast_equals_evolving_identical_rows(self, engine):
        program = grid_program()
        row = grid_bindings(rows=1, samples=1)[0]
        single = program.evolve(row[None, :], engine)
        repeated = program.evolve(np.tile(row, (5, 1)), engine)
        broadcast = single.broadcast_to(5)
        np.testing.assert_array_equal(
            broadcast.probabilities(), repeated.probabilities()
        )

    def test_broadcast_requires_singleton_batch(self):
        program = grid_program()
        state = program.evolve(grid_bindings(rows=1, samples=2), StatevectorEngine())
        with pytest.raises(SimulationError):
            state.broadcast_to(3)

    def test_broadcast_size_must_be_positive(self):
        program = grid_program()
        state = program.evolve(grid_bindings(rows=1, samples=1), StatevectorEngine())
        with pytest.raises(SimulationError):
            state.broadcast_to(0)


class TestSharedPrefixExecution:
    @pytest.mark.parametrize("engine", [StatevectorEngine(), DensitySuperoperatorEngine()])
    @pytest.mark.parametrize("sample_budget", [1, 2, 4])
    def test_shared_execution_is_bit_identical_to_plain_tiling(
        self, engine, sample_budget
    ):
        program = grid_program()
        bindings = grid_bindings(rows=3, samples=4)
        element = 2**program.num_qubits
        shared_plan = TilePlan.for_grid_sweep(3, 4, element, element * sample_budget)
        plain = program.execute(bindings, engine)
        shared = program.execute(bindings, engine, tile_plan=shared_plan)
        np.testing.assert_array_equal(shared, plain)

    def test_prefix_certification_runs_for_every_shared_tile(self, monkeypatch):
        import repro.analysis.equiv as equiv

        calls = []
        real = equiv.verify_shared_prefix

        def counting(program, bindings, prefix_steps):
            calls.append(prefix_steps)
            return real(program, bindings, prefix_steps)

        monkeypatch.setattr(equiv, "verify_shared_prefix", counting)
        program = grid_program()
        bindings = grid_bindings(rows=3, samples=4)
        element = 2**program.num_qubits
        plan = TilePlan.for_grid_sweep(3, 4, element, element * 4)
        program.execute(bindings, StatevectorEngine(), tile_plan=plan)
        # One certified claim per multi-element tile (3 rows = 3 tiles),
        # each covering the fixed h + the two trained steps.
        assert calls == [3, 3, 3]

    def test_illegal_claim_raises_simulation_error(self, monkeypatch):
        import repro.analysis.equiv as equiv

        real = equiv.verify_shared_prefix

        def sabotaged(program, bindings, prefix_steps):
            return real(program, bindings, len(program.steps) + 1)

        monkeypatch.setattr(equiv, "verify_shared_prefix", sabotaged)
        program = grid_program()
        bindings = grid_bindings(rows=2, samples=3)
        element = 2**program.num_qubits
        plan = TilePlan.for_grid_sweep(2, 3, element, element * 3)
        with pytest.raises(SimulationError, match="shared-prefix tile execution"):
            program.execute(bindings, StatevectorEngine(), tile_plan=plan)

    def test_row_varying_tile_falls_back_to_full_evolution(self):
        """A tile spanning rows shares only the fixed prefix — still exact."""
        program = grid_program()
        bindings = grid_bindings(rows=3, samples=2)
        element = 2**program.num_qubits
        # Hand-built shared-prefix plan whose tiles span parameter rows.
        plan = TilePlan(
            rows=3,
            samples=2,
            row_tile=3,
            sample_tile=2,
            max_amplitudes=element * 6,
            shared_prefix=True,
        )
        plain = program.execute(bindings, StatevectorEngine())
        shared = program.execute(bindings, StatevectorEngine(), tile_plan=plan)
        np.testing.assert_array_equal(shared, plain)
