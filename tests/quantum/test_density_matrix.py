"""Tests for the density-matrix engine."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum import gates
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import depolarizing_kraus
from repro.quantum.statevector import Statevector


class TestConstruction:
    def test_ground_state(self):
        dm = DensityMatrix(2)
        assert dm.trace() == pytest.approx(1.0)
        assert dm.purity() == pytest.approx(1.0)

    def test_from_statevector(self):
        sv = Statevector(1)
        sv.apply_matrix(gates.HADAMARD, (0,))
        dm = DensityMatrix(sv)
        np.testing.assert_allclose(dm.probabilities(), [0.5, 0.5], atol=1e-12)

    def test_from_matrix_validates_trace(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.eye(2))

    def test_from_matrix_validates_shape(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.zeros((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.eye(3) / 3)

    def test_rejects_non_hermitian_matrix(self):
        """Unit trace alone is not physical: non-Hermitian input must fail."""
        matrix = np.array([[0.5, 0.4], [0.1, 0.5]], dtype=complex)
        with pytest.raises(SimulationError, match="Hermitian"):
            DensityMatrix(matrix)

    def test_accepts_hermitian_within_tolerance(self):
        matrix = np.array([[0.5, 0.25 + 1e-12j], [0.25, 0.5]], dtype=complex)
        DensityMatrix(matrix)  # must not raise


class TestUnitaryEvolution:
    def test_matches_statevector_on_bell_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        dm = DensityMatrix(2).evolve(qc)
        sv = Statevector(2).evolve(qc)
        np.testing.assert_allclose(dm.probabilities(), sv.probabilities(), atol=1e-12)
        assert dm.purity() == pytest.approx(1.0)

    def test_expectation_z(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(gates.PAULI_X, (0,))
        assert dm.expectation_z(0) == pytest.approx(-1.0)

    def test_out_of_range_qubit(self):
        with pytest.raises(SimulationError):
            DensityMatrix(1).apply_matrix(gates.PAULI_X, (2,))

    def test_evolve_rejects_measurement(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(SimulationError):
            DensityMatrix(1).evolve(qc)

    def test_qubit_ordering_matches_statevector(self):
        qc = QuantumCircuit(3)
        qc.ry(0.7, 0).cx(0, 2).rz(0.3, 2).cswap(0, 1, 2)
        dm = DensityMatrix(3).evolve(qc)
        sv = Statevector(3).evolve(qc)
        np.testing.assert_allclose(dm.probabilities(), sv.probabilities(), atol=1e-10)


class TestChannels:
    def test_depolarizing_reduces_purity(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(gates.HADAMARD, (0,))
        dm.apply_kraus(depolarizing_kraus(0.5), (0,))
        assert dm.purity() < 1.0
        assert dm.trace() == pytest.approx(1.0)

    def test_full_depolarization_gives_maximally_mixed(self):
        dm = DensityMatrix(1)
        dm.apply_kraus(depolarizing_kraus(1.0), (0,))
        np.testing.assert_allclose(dm.data, np.eye(2) / 2, atol=1e-12)

    def test_channel_preserves_trace(self):
        dm = DensityMatrix(2)
        dm.apply_matrix(gates.HADAMARD, (0,))
        dm.apply_kraus(depolarizing_kraus(0.3, 2), (0, 1))
        assert dm.trace() == pytest.approx(1.0)


class TestPartialTrace:
    def test_product_state_reduces_cleanly(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        dm = DensityMatrix(2).evolve(qc)
        reduced = dm.partial_trace([0])
        np.testing.assert_allclose(reduced.data, [[0, 0], [0, 1]], atol=1e-12)

    def test_bell_state_reduces_to_maximally_mixed(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        dm = DensityMatrix(2).evolve(qc)
        reduced = dm.partial_trace([0])
        np.testing.assert_allclose(reduced.data, np.eye(2) / 2, atol=1e-12)
        assert reduced.purity() == pytest.approx(0.5)

    def test_keep_order_is_respected(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        dm = DensityMatrix(2).evolve(qc)
        # Keeping (1, 0) puts the excited qubit first: state |10>.
        reordered = dm.partial_trace([1, 0])
        assert reordered.probabilities()[2] == pytest.approx(1.0)

    def test_invalid_keep_raises(self):
        with pytest.raises(SimulationError):
            DensityMatrix(2).partial_trace([0, 0])

    def test_trace_preserved(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).ry(0.4, 2)
        dm = DensityMatrix(3).evolve(qc)
        assert dm.partial_trace([2]).trace() == pytest.approx(1.0)


class TestMeasurement:
    def test_collapse(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(gates.HADAMARD, (0,))
        dm.collapse(0, 1)
        assert dm.probabilities()[1] == pytest.approx(1.0)

    def test_collapse_impossible_outcome(self):
        with pytest.raises(SimulationError):
            DensityMatrix(1).collapse(0, 1)

    def test_measure_probability(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(gates.ry(np.pi / 2), (0,))
        assert dm.measure_probability(0, 1) == pytest.approx(0.5)

    def test_reset(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(gates.PAULI_X, (0,))
        dm.reset(0, rng=0)
        assert dm.probabilities()[0] == pytest.approx(1.0)

    def test_sample_counts(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(gates.HADAMARD, (0,))
        counts = dm.sample_counts(500, rng=1)
        assert sum(counts.values()) == 500


class TestZeroDiagonalGuard:
    """An all-zero diagonal must raise instead of yielding NaN probabilities."""

    @staticmethod
    def _zeroed() -> DensityMatrix:
        dm = DensityMatrix(1)
        dm._matrix = np.zeros_like(dm._matrix)
        return dm

    def test_probabilities_raise(self):
        with pytest.raises(SimulationError):
            self._zeroed().probabilities()

    def test_marginal_probabilities_raise(self):
        with pytest.raises(SimulationError):
            self._zeroed().probabilities([0])

    def test_sample_counts_raise(self):
        with pytest.raises(SimulationError):
            self._zeroed().sample_counts(100, rng=0)

    def test_non_finite_diagonal_raises(self):
        dm = DensityMatrix(1)
        dm._matrix = np.full_like(dm._matrix, np.nan)
        with pytest.raises(SimulationError):
            dm.probabilities()


class TestFidelity:
    def test_identical_pure_states(self):
        dm = DensityMatrix(1)
        assert dm.fidelity(dm.copy()) == pytest.approx(1.0)

    def test_orthogonal_pure_states(self):
        a = DensityMatrix(1)
        b = DensityMatrix(1)
        b.apply_matrix(gates.PAULI_X, (0,))
        assert a.fidelity(b) == pytest.approx(0.0, abs=1e-8)

    def test_matches_statevector_fidelity(self):
        sv_a = Statevector(1)
        sv_b = Statevector(1)
        sv_b.apply_matrix(gates.ry(0.9), (0,))
        assert DensityMatrix(sv_a).fidelity(DensityMatrix(sv_b)) == pytest.approx(
            sv_a.fidelity(sv_b), abs=1e-6
        )

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            DensityMatrix(1).fidelity(DensityMatrix(2))
