"""Tests for the batched density-matrix engine."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum import gates
from repro.quantum.batched_density import BatchedDensityMatrix
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    thermal_relaxation_kraus,
)


def random_angles(batch, count, seed):
    return np.random.default_rng(seed).uniform(0, np.pi, size=(batch, count))


class TestConstruction:
    def test_ground_state_stack(self):
        stack = BatchedDensityMatrix(3, 2)
        assert stack.batch_size == 3
        assert stack.num_qubits == 2
        np.testing.assert_allclose(stack.traces(), np.ones(3), atol=1e-12)
        np.testing.assert_allclose(stack.purities(), np.ones(3), atol=1e-12)

    def test_invalid_sizes(self):
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(0, 1)
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(1, 0)

    def test_from_matrices_round_trip(self):
        source = BatchedDensityMatrix(2, 1)
        source.apply_matrix(gates.HADAMARD, (0,))
        rebuilt = BatchedDensityMatrix.from_matrices(source.matrices)
        np.testing.assert_allclose(rebuilt.matrices, source.matrices, atol=1e-12)

    def test_from_matrices_validates_shape(self):
        with pytest.raises(SimulationError):
            BatchedDensityMatrix.from_matrices(np.zeros((2, 2)))
        with pytest.raises(SimulationError):
            BatchedDensityMatrix.from_matrices(np.zeros((2, 2, 3)))
        with pytest.raises(SimulationError):
            BatchedDensityMatrix.from_matrices(np.zeros((2, 3, 3)))

    def test_from_matrices_validates_physicality(self):
        with pytest.raises(SimulationError, match="unit trace"):
            BatchedDensityMatrix.from_matrices(np.stack([np.eye(2)] * 2))
        non_hermitian = np.array([[[0.5, 1j], [0.3, 0.5]]], dtype=complex)
        with pytest.raises(SimulationError, match="Hermitian"):
            BatchedDensityMatrix.from_matrices(non_hermitian)

    def test_from_density_matrices(self):
        dm = DensityMatrix(1)
        dm.apply_matrix(gates.PAULI_X, (0,))
        stack = BatchedDensityMatrix.from_density_matrices([DensityMatrix(1), dm])
        np.testing.assert_allclose(stack.probabilities(), [[1, 0], [0, 1]], atol=1e-12)

    def test_from_zero_density_matrices(self):
        with pytest.raises(SimulationError):
            BatchedDensityMatrix.from_density_matrices([])

    def test_density_matrix_extraction(self):
        stack = BatchedDensityMatrix(2, 1)
        stack.apply_matrix(gates.HADAMARD, (0,))
        element = stack.density_matrix(1)
        np.testing.assert_allclose(element.probabilities(), [0.5, 0.5], atol=1e-12)
        with pytest.raises(SimulationError):
            stack.density_matrix(2)


class TestUnitaryEvolution:
    def test_shared_matrix_matches_per_element_loop(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 2).ry(0.4, 1).cswap(0, 1, 2)
        stack = BatchedDensityMatrix(4, 3).evolve(qc)
        single = DensityMatrix(3).evolve(qc)
        for element in range(4):
            np.testing.assert_allclose(
                stack.density_matrix(element).data, single.data, atol=1e-12
            )

    def test_per_element_matrices_match_loop(self):
        angles = random_angles(5, 1, seed=0)[:, 0]
        stack = BatchedDensityMatrix(5, 2)
        stack.apply_matrix(gates.ry_batch(angles), (1,))
        for element, theta in enumerate(angles):
            expected = DensityMatrix(2).apply_matrix(gates.ry(theta), (1,))
            np.testing.assert_allclose(
                stack.density_matrix(element).data, expected.data, atol=1e-12
            )

    def test_qubit_validation(self):
        stack = BatchedDensityMatrix(2, 2)
        with pytest.raises(SimulationError):
            stack.apply_matrix(gates.PAULI_X, (3,))
        with pytest.raises(SimulationError):
            stack.apply_matrix(gates.CNOT, (0, 0))

    def test_matrix_shape_validation(self):
        stack = BatchedDensityMatrix(2, 2)
        with pytest.raises(SimulationError):
            stack.apply_matrix(np.eye(4), (0,))
        with pytest.raises(SimulationError):
            stack.apply_matrix(np.stack([np.eye(2)] * 3), (0,))

    def test_evolve_rejects_measurement_and_reset(self):
        measured = QuantumCircuit(1, 1)
        measured.measure(0, 0)
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(1, 1).evolve(measured)
        resetting = QuantumCircuit(1)
        resetting.reset(0)
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(1, 1).evolve(resetting)


class TestChannels:
    @pytest.mark.parametrize(
        "kraus",
        [
            depolarizing_kraus(0.3),
            amplitude_damping_kraus(0.2),
            thermal_relaxation_kraus(t1=50.0, t2=60.0, gate_time=0.1),
        ],
    )
    def test_single_qubit_channels_match_loop(self, kraus):
        stack = BatchedDensityMatrix(3, 2)
        stack.apply_matrix(gates.HADAMARD, (0,))
        stack.apply_kraus(kraus, (0,))
        single = DensityMatrix(2)
        single.apply_matrix(gates.HADAMARD, (0,))
        single.apply_kraus(kraus, (0,))
        for element in range(3):
            np.testing.assert_allclose(
                stack.density_matrix(element).data, single.data, atol=1e-12
            )

    def test_two_qubit_channel_preserves_traces(self):
        stack = BatchedDensityMatrix(4, 2)
        stack.apply_matrix(gates.HADAMARD, (0,))
        stack.apply_kraus(depolarizing_kraus(0.4, 2), (0, 1))
        np.testing.assert_allclose(stack.traces(), np.ones(4), atol=1e-12)
        assert np.all(stack.purities() < 1.0)

    def test_full_depolarization_gives_maximally_mixed(self):
        stack = BatchedDensityMatrix(2, 1)
        stack.apply_kraus(depolarizing_kraus(1.0), (0,))
        np.testing.assert_allclose(
            stack.matrices, np.stack([np.eye(2) / 2] * 2), atol=1e-12
        )

    def test_per_element_kraus_stack(self):
        """A (batch, 2, 2) Kraus operator applies element-wise."""
        gammas = np.array([0.0, 1.0])
        k0 = np.stack([np.diag([1.0, np.sqrt(1 - g)]) for g in gammas]).astype(complex)
        k1 = np.stack(
            [np.array([[0.0, np.sqrt(g)], [0.0, 0.0]]) for g in gammas]
        ).astype(complex)
        stack = BatchedDensityMatrix(2, 1)
        stack.apply_matrix(gates.PAULI_X, (0,))
        stack.apply_kraus([k0, k1], (0,))
        # gamma=0 leaves |1>, gamma=1 decays to |0>.
        np.testing.assert_allclose(stack.probabilities(), [[0, 1], [1, 0]], atol=1e-12)

    def test_empty_channel_rejected(self):
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(1, 1).apply_kraus([], (0,))


class TestProbabilities:
    def test_marginalisation_matches_density_matrix(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).ry(0.9, 2)
        stack = BatchedDensityMatrix(2, 3).evolve(qc)
        single = DensityMatrix(3).evolve(qc)
        for qubits in [(0,), (2, 0), (1, 2)]:
            np.testing.assert_allclose(
                stack.probabilities(qubits),
                np.stack([single.probabilities(qubits)] * 2),
                atol=1e-12,
            )

    def test_zero_diagonal_raises(self):
        stack = BatchedDensityMatrix(2, 1)
        stack._matrices = np.zeros_like(stack._matrices)
        with pytest.raises(SimulationError):
            stack.probabilities()

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(SimulationError):
            BatchedDensityMatrix(1, 2).probabilities((0, 0))
