"""Tests for the vectorised batch path of :class:`DensityMatrixSimulator`.

The noisy counterpart of ``test_run_batch.py``: a structure-sharing sweep
must evolve as one :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
pass whose counts are seed-identical (draw for draw) to the per-circuit loop,
under gate noise and readout error alike.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel, ReadoutError, depolarizing_kraus
from repro.quantum.operations import Parameter
from repro.quantum.simulator import DensityMatrixSimulator


def sweep_circuit(angles, name="sweep") -> QuantumCircuit:
    """SWAP-test-shaped circuit: shared skeleton, per-call rotation angles."""
    qc = QuantumCircuit(3, 1, name=name)
    qc.h(0)
    qc.ry(angles[0], 1).rz(angles[1], 1)
    qc.ry(angles[2], 2).rz(angles[3], 2)
    qc.cswap(0, 1, 2)
    qc.h(0)
    qc.measure(0, 0)
    return qc


def random_sweep(count, seed):
    rng = np.random.default_rng(seed)
    return [sweep_circuit(rng.uniform(0, np.pi, 4)) for _ in range(count)]


def noisy_model() -> NoiseModel:
    return NoiseModel.from_error_rates(
        0.01, 0.05, readout_error=0.04, t1=50.0, t2=60.0, gate_time=0.1
    )


class TestVectorisedPath:
    def test_exact_probabilities_match_per_circuit_runs(self):
        circuits = random_sweep(7, seed=0)
        batched = DensityMatrixSimulator(noisy_model()).run_batch(circuits, shots=None)
        for circuit, result in zip(circuits, batched):
            single = DensityMatrixSimulator(noisy_model()).run(circuit, shots=None)
            assert set(result.probabilities) == set(single.probabilities)
            for key, value in single.probabilities.items():
                assert result.probabilities[key] == pytest.approx(value, abs=1e-12)

    def test_density_matrices_match_per_circuit_runs(self):
        circuits = random_sweep(4, seed=1)
        batched = DensityMatrixSimulator(noisy_model()).run_batch(circuits, shots=None)
        for circuit, result in zip(circuits, batched):
            single = DensityMatrixSimulator(noisy_model()).run(circuit, shots=None)
            np.testing.assert_allclose(
                result.density_matrix.data, single.density_matrix.data, atol=1e-12
            )

    def test_sampled_counts_seed_match_the_loop(self):
        """One stacked multinomial call must consume the RNG like the loop."""
        circuits = random_sweep(6, seed=2)
        batched = DensityMatrixSimulator(noisy_model(), seed=11).run_batch(
            circuits, shots=500
        )
        loop_sim = DensityMatrixSimulator(noisy_model(), seed=11)
        looped = [loop_sim.run(circuit, shots=500) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]

    def test_seed_match_with_gate_noise_only(self):
        noise = NoiseModel().add_all_qubit_error(depolarizing_kraus(0.02), 1)
        circuits = random_sweep(5, seed=3)
        batched = DensityMatrixSimulator(noise, seed=5).run_batch(circuits, shots=256)
        loop_sim = DensityMatrixSimulator(noise, seed=5)
        looped = [loop_sim.run(circuit, shots=256) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]

    def test_seed_match_with_readout_error_only(self):
        noise = NoiseModel().add_readout_error(ReadoutError(0.08, 0.03))
        circuits = random_sweep(5, seed=4)
        batched = DensityMatrixSimulator(noise, seed=6).run_batch(circuits, shots=256)
        loop_sim = DensityMatrixSimulator(noise, seed=6)
        looped = [loop_sim.run(circuit, shots=256) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]
        for batch_result, loop_result in zip(batched, looped):
            assert batch_result.probabilities == pytest.approx(loop_result.probabilities)

    def test_ideal_model_matches_loop(self):
        circuits = random_sweep(4, seed=5)
        batched = DensityMatrixSimulator(seed=3).run_batch(circuits, shots=128)
        loop_sim = DensityMatrixSimulator(seed=3)
        looped = [loop_sim.run(circuit, shots=128) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]

    def test_identical_parameters_share_one_matrix(self):
        circuits = [sweep_circuit([0.3, 0.7, 0.3, 0.7]) for _ in range(3)]
        batched = DensityMatrixSimulator(noisy_model()).run_batch(circuits, shots=None)
        single = DensityMatrixSimulator(noisy_model()).run(circuits[0], shots=None)
        for result in batched:
            for key, value in single.probabilities.items():
                assert result.probabilities[key] == pytest.approx(value, abs=1e-12)

    def test_batched_metadata_marks_the_vectorised_engine(self):
        circuits = random_sweep(2, seed=6)
        results = DensityMatrixSimulator(noisy_model()).run_batch(circuits, shots=None)
        assert all(r.metadata.get("batched") for r in results)
        assert all(r.metadata["batch_size"] == 2 for r in results)
        assert all(r.metadata["noisy"] for r in results)


class TestFallbacks:
    def test_mixed_structures_fall_back_to_the_loop(self):
        bell = QuantumCircuit(3, 1, name="bell")
        bell.h(0).cx(0, 1).measure(0, 0)
        circuits = [sweep_circuit([0.1, 0.2, 0.3, 0.4]), bell]
        results = DensityMatrixSimulator(noisy_model()).run_batch(circuits, shots=None)
        assert len(results) == 2
        assert not results[0].metadata.get("batched")
        single = DensityMatrixSimulator(noisy_model()).run(bell, shots=None)
        for key, value in single.probabilities.items():
            assert results[1].probabilities[key] == pytest.approx(value, abs=1e-12)

    def test_reset_circuits_fall_back_to_the_loop(self):
        qc = QuantumCircuit(2, 1, name="with_reset")
        qc.h(0).reset(0).measure(0, 0)
        results = DensityMatrixSimulator(seed=0).run_batch([qc, qc.copy()], shots=64)
        assert len(results) == 2
        assert not results[0].metadata.get("batched")

    def test_fallback_sampling_seed_matches_the_loop(self):
        bell = QuantumCircuit(3, 1, name="bell")
        bell.h(0).cx(0, 1).measure(0, 0)
        circuits = [sweep_circuit([0.1, 0.2, 0.3, 0.4]), bell]
        batched = DensityMatrixSimulator(noisy_model(), seed=4).run_batch(
            circuits, shots=128
        )
        loop_sim = DensityMatrixSimulator(noisy_model(), seed=4)
        looped = [loop_sim.run(circuit, shots=128) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]


class TestValidation:
    def test_empty_batch_yields_empty_results(self):
        assert DensityMatrixSimulator().run_batch([]) == []

    def test_zero_shots_rejected(self):
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run_batch(random_sweep(2, seed=7), shots=0)

    def test_unbound_parameters_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.ry(Parameter("t"), 0).measure(0, 0)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run_batch([qc, qc.copy()], shots=None)

    def test_shots_without_measurement_rejected(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run_batch([qc, qc.copy()], shots=16)

    def test_double_measurement_rejected_in_batch(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).measure(0, 0).measure(0, 1)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator().run_batch([qc, qc.copy()], shots=None)
