"""Tests for device coupling maps."""

import pytest

from repro.exceptions import TranspilerError
from repro.quantum.topology import CouplingMap


class TestConstruction:
    def test_edges_normalised_and_deduplicated(self):
        cm = CouplingMap(3, edges=((1, 0), (0, 1), (1, 2)))
        assert cm.edges == ((0, 1), (1, 2))

    def test_self_edge_rejected(self):
        with pytest.raises(TranspilerError):
            CouplingMap(2, edges=((0, 0),))

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(TranspilerError):
            CouplingMap(2, edges=((0, 5),))

    def test_zero_qubits_rejected(self):
        with pytest.raises(TranspilerError):
            CouplingMap(0)


class TestConnectivityQueries:
    def test_linear_coupling(self):
        cm = CouplingMap.linear(4)
        assert cm.are_coupled(0, 1)
        assert not cm.are_coupled(0, 2)
        assert cm.neighbors(1) == (0, 2)

    def test_all_to_all(self):
        cm = CouplingMap.all_to_all(4)
        assert cm.are_coupled(0, 3)
        assert cm.distance(0, 3) == 1

    def test_ring_distance(self):
        cm = CouplingMap.ring(6)
        assert cm.distance(0, 3) == 3
        assert cm.distance(0, 5) == 1

    def test_grid_structure(self):
        cm = CouplingMap.grid(2, 3)
        assert cm.num_qubits == 6
        assert cm.are_coupled(0, 1)
        assert cm.are_coupled(0, 3)
        assert not cm.are_coupled(0, 4)

    def test_shortest_path_endpoints(self):
        cm = CouplingMap.linear(5)
        assert cm.shortest_path(0, 4) == [0, 1, 2, 3, 4]

    def test_disconnected_path_raises(self):
        cm = CouplingMap(4, edges=((0, 1), (2, 3)))
        with pytest.raises(TranspilerError):
            cm.shortest_path(0, 3)

    def test_is_connected(self):
        assert CouplingMap.linear(3).is_connected()
        assert not CouplingMap(4, edges=((0, 1), (2, 3))).is_connected()


class TestDeviceFactories:
    def test_ibmq_5q_t_shape(self):
        cm = CouplingMap.ibmq_5q_t()
        assert cm.num_qubits == 5
        assert cm.is_connected()
        # Qubit 1 is the hub of the T.
        assert set(cm.neighbors(1)) == {0, 2, 3}

    def test_ibmq_5q_bowtie(self):
        cm = CouplingMap.ibmq_5q_bowtie()
        assert cm.num_qubits == 5
        assert cm.is_connected()

    def test_melbourne_like(self):
        cm = CouplingMap.ibmq_melbourne_like(15)
        assert cm.num_qubits == 15
        assert cm.is_connected()

    def test_falcon_27q(self):
        cm = CouplingMap.ibmq_falcon_27q()
        assert cm.num_qubits == 27
        assert cm.is_connected()
        # Heavy-hexagon-style devices are sparse: far fewer edges than all-to-all.
        assert len(cm.edges) < 27 * 26 / 4


class TestSubgraphSelection:
    def test_induced_subgraph_relabels(self):
        cm = CouplingMap.linear(5)
        sub = cm.induced_subgraph([2, 3, 4])
        assert sub.num_qubits == 3
        assert sub.are_coupled(0, 1)
        assert sub.are_coupled(1, 2)

    def test_induced_subgraph_of_all_to_all(self):
        sub = CouplingMap.all_to_all(8).induced_subgraph([1, 5, 7])
        assert sub.are_coupled(0, 2)

    def test_induced_subgraph_rejects_duplicates(self):
        with pytest.raises(TranspilerError):
            CouplingMap.linear(4).induced_subgraph([0, 0])

    def test_select_connected_region_is_connected(self):
        cm = CouplingMap.ibmq_falcon_27q()
        region = cm.select_connected_region(5)
        assert len(region) == 5
        assert cm.induced_subgraph(region).is_connected()

    def test_select_region_full_device(self):
        cm = CouplingMap.linear(4)
        assert sorted(cm.select_connected_region(4)) == [0, 1, 2, 3]

    def test_select_region_too_large(self):
        with pytest.raises(TranspilerError):
            CouplingMap.linear(3).select_connected_region(4)

    def test_select_region_on_all_to_all(self):
        assert CouplingMap.all_to_all(6).select_connected_region(3) == [0, 1, 2]
