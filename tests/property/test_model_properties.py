"""Property-based tests for QuClassi model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuClassi
from repro.core.inference import fidelities_to_probabilities
from repro.utils.math import softmax

features_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=4, max_size=4
)


@st.composite
def parameter_vectors(draw, size: int = 4):
    return np.asarray(
        draw(st.lists(st.floats(min_value=0.0, max_value=np.pi), min_size=size, max_size=size))
    )


@settings(max_examples=20, deadline=None)
@given(features=features_strategy, params=parameter_vectors())
def test_class_fidelities_bounded(features, params):
    model = QuClassi(num_features=4, num_classes=2, seed=0)
    model.set_weights(np.stack([params, params[::-1]]))
    fidelities = model.class_fidelities(np.asarray(features))
    assert np.all(fidelities >= -1e-9)
    assert np.all(fidelities <= 1.0 + 1e-9)


@settings(max_examples=20, deadline=None)
@given(features=features_strategy)
def test_predict_proba_is_distribution(features):
    model = QuClassi(num_features=4, num_classes=3, seed=1)
    probabilities = model.predict_proba(np.asarray(features))
    assert probabilities.shape == (1, 3)
    assert probabilities.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(probabilities >= 0)


@settings(max_examples=20, deadline=None)
@given(
    fidelities=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=3),
        min_size=1,
        max_size=5,
    )
)
def test_softmax_inference_matches_direct_softmax(fidelities):
    matrix = np.asarray(fidelities)
    np.testing.assert_allclose(
        fidelities_to_probabilities(matrix), softmax(matrix, axis=1), atol=1e-12
    )


@settings(max_examples=15, deadline=None)
@given(params=parameter_vectors())
def test_trained_state_is_always_normalised(params):
    model = QuClassi(num_features=4, num_classes=2, seed=0)
    weights = model.get_weights()
    weights[0] = params
    model.set_weights(weights)
    assert model.trained_statevector(0).norm() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(params=parameter_vectors())
def test_prediction_invariant_to_temperature(params):
    """Softmax temperature rescales probabilities but never changes the arg-max."""
    features = np.full((3, 4), 0.4)
    sharp = QuClassi(num_features=4, num_classes=2, temperature=0.2, seed=2)
    soft = QuClassi(num_features=4, num_classes=2, temperature=5.0, seed=2)
    weights = sharp.get_weights()
    weights[0] = params
    sharp.set_weights(weights)
    soft.set_weights(weights)
    np.testing.assert_array_equal(sharp.predict(features), soft.predict(features))
