"""Property-based tests (hypothesis) for the quantum substrate invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import gates
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.fidelity import (
    fidelity_from_swap_test_probability,
    swap_test_fidelity_exact,
    swap_test_probability_from_fidelity,
)
from repro.quantum.statevector import Statevector

angles = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False)
small_angles = st.floats(min_value=0.0, max_value=math.pi, allow_nan=False)


def product_state(angle_list) -> Statevector:
    state = Statevector(len(angle_list))
    for qubit, (theta, phi) in enumerate(angle_list):
        state.apply_matrix(gates.ry(theta), (qubit,))
        state.apply_matrix(gates.rz(phi), (qubit,))
    return state


@settings(max_examples=40, deadline=None)
@given(theta=angles)
def test_single_qubit_rotations_are_unitary(theta):
    for factory in (gates.rx, gates.ry, gates.rz):
        assert gates.is_unitary(factory(theta))


@settings(max_examples=40, deadline=None)
@given(theta=angles)
def test_two_qubit_rotations_are_unitary(theta):
    for factory in (gates.rxx, gates.ryy, gates.rzz, gates.cry, gates.crz, gates.crx):
        assert gates.is_unitary(factory(theta))


@settings(max_examples=30, deadline=None)
@given(theta=angles, phi=angles)
def test_general_rotation_unitary(theta, phi):
    assert gates.is_unitary(gates.r_gate(theta, phi))


@settings(max_examples=30, deadline=None)
@given(theta=angles)
def test_rotation_additivity(theta):
    """RY(a) RY(b) = RY(a + b) — rotations about one axis compose additively."""
    np.testing.assert_allclose(
        gates.ry(theta) @ gates.ry(0.5), gates.ry(theta + 0.5), atol=1e-10
    )


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(st.tuples(small_angles, angles), min_size=1, max_size=3),
)
def test_statevector_norm_preserved(data):
    state = product_state(data)
    assert state.norm() == pytest.approx(1.0, abs=1e-9)
    probs = state.probabilities()
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(probs >= -1e-12)


@settings(max_examples=25, deadline=None)
@given(
    a=st.lists(st.tuples(small_angles, angles), min_size=2, max_size=2),
    b=st.lists(st.tuples(small_angles, angles), min_size=2, max_size=2),
)
def test_fidelity_symmetry_and_bounds(a, b):
    state_a = product_state(a)
    state_b = product_state(b)
    fidelity_ab = state_a.fidelity(state_b)
    fidelity_ba = state_b.fidelity(state_a)
    assert fidelity_ab == pytest.approx(fidelity_ba, abs=1e-9)
    assert -1e-9 <= fidelity_ab <= 1.0 + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    a=st.lists(st.tuples(small_angles, angles), min_size=1, max_size=2),
    b=st.lists(st.tuples(small_angles, angles), min_size=1, max_size=2),
)
def test_swap_test_identity(a, b):
    """P(ancilla = 0) = (1 + F) / 2 holds for arbitrary product states."""
    if len(a) != len(b):
        b = a
    state_a = product_state(a)
    state_b = product_state(b)
    direct = state_a.fidelity(state_b)
    via_swap = swap_test_fidelity_exact(state_a, state_b)
    assert via_swap == pytest.approx(direct, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(fidelity=st.floats(min_value=0.0, max_value=1.0))
def test_swap_probability_round_trip(fidelity):
    p_zero = swap_test_probability_from_fidelity(fidelity)
    assert 0.5 - 1e-12 <= p_zero <= 1.0 + 1e-12
    assert fidelity_from_swap_test_probability(p_zero) == pytest.approx(fidelity, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    thetas=st.lists(angles, min_size=1, max_size=4),
    qubit_count=st.integers(min_value=1, max_value=3),
)
def test_circuit_inverse_returns_to_ground_state(thetas, qubit_count):
    circuit = QuantumCircuit(qubit_count)
    for index, theta in enumerate(thetas):
        circuit.ry(theta, index % qubit_count)
        if qubit_count > 1:
            circuit.cx(index % qubit_count, (index + 1) % qubit_count)
    roundtrip = circuit.compose(circuit.inverse())
    state = Statevector(qubit_count).evolve(roundtrip)
    assert abs(state.data[0]) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(probability=st.floats(min_value=0.0, max_value=1.0))
def test_depolarizing_channel_trace_preserving(probability):
    from repro.quantum.density_matrix import DensityMatrix
    from repro.quantum.noise import depolarizing_kraus

    dm = DensityMatrix(1)
    dm.apply_matrix(gates.HADAMARD, (0,))
    dm.apply_kraus(depolarizing_kraus(probability), (0,))
    assert dm.trace() == pytest.approx(1.0, abs=1e-9)
    assert dm.purity() <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    t1=st.floats(min_value=1.0, max_value=200.0),
    t2_scale=st.floats(min_value=0.05, max_value=2.0),
    gate_time=st.floats(min_value=0.0, max_value=5.0),
)
def test_thermal_relaxation_kraus_completeness(t1, t2_scale, gate_time):
    """The composed damping+dephasing channel satisfies sum K†K = I."""
    from repro.quantum.noise import is_valid_channel, thermal_relaxation_kraus

    t2 = t1 * t2_scale  # always physical: t2 <= 2 * t1
    assert is_valid_channel(thermal_relaxation_kraus(t1, t2, gate_time))


@settings(max_examples=25, deadline=None)
@given(
    single_error=st.floats(min_value=0.0, max_value=0.2),
    two_error=st.floats(min_value=0.0, max_value=0.2),
    t1=st.floats(min_value=5.0, max_value=100.0),
    t2_scale=st.floats(min_value=0.1, max_value=1.5),
    gate_time=st.floats(min_value=0.01, max_value=1.0),
)
def test_stacked_gate_channels_are_each_complete(
    single_error, two_error, t1, t2_scale, gate_time
):
    """Every channel a device model stacks onto a gate is trace preserving.

    ``from_error_rates`` composes depolarising noise with thermal relaxation
    on single-qubit gates; applying the stack in sequence only preserves the
    state's trace if each stacked channel is complete on its own.
    """
    from repro.quantum.density_matrix import DensityMatrix
    from repro.quantum.noise import NoiseModel, is_valid_channel

    model = NoiseModel.from_error_rates(
        single_error, two_error, t1=t1, t2=t1 * t2_scale, gate_time=gate_time
    )
    channels = model.gate_channels("ry", 1) + model.gate_channels("cx", 2)
    assert channels  # relaxation is always attached under these strategies
    for channel in channels:
        assert is_valid_channel(channel)

    dm = DensityMatrix(1)
    dm.apply_matrix(gates.HADAMARD, (0,))
    for channel in model.gate_channels("ry", 1):
        dm.apply_kraus(channel, (0,))
    assert dm.trace() == pytest.approx(1.0, abs=1e-9)
