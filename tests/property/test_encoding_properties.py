"""Property-based tests for data encodings and preprocessing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datasets.pca import PCA
from repro.encoding import AmplitudeEncoder, BasisEncoder, DualAngleEncoder, MinMaxNormalizer, SingleAngleEncoder

unit_features = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=8
)


@settings(max_examples=40, deadline=None)
@given(features=unit_features)
def test_dual_angle_encoding_preserves_norm(features):
    state = DualAngleEncoder().encode(np.asarray(features))
    assert state.norm() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(features=unit_features)
def test_dual_angle_first_dimension_round_trip(features):
    """The RY angle stores dimension 2i as qubit i's excited-state probability."""
    features = np.asarray(features)
    state = DualAngleEncoder().encode(features)
    for qubit in range((len(features) + 1) // 2):
        expected = features[2 * qubit]
        assert state.probabilities([qubit])[1] == pytest.approx(expected, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(features=unit_features)
def test_single_angle_encoding_round_trip(features):
    features = np.asarray(features)
    state = SingleAngleEncoder().encode(features)
    for qubit, value in enumerate(features):
        assert state.probabilities([qubit])[1] == pytest.approx(value, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(features=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=8).filter(lambda f: sum(f) > 1e-6))
def test_amplitude_encoding_normalised(features):
    amplitudes = AmplitudeEncoder().amplitudes(np.asarray(features))
    assert np.linalg.norm(amplitudes) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(features=unit_features)
def test_basis_encoding_is_deterministic_basis_state(features):
    state = BasisEncoder().encode(np.asarray(features))
    probs = state.probabilities()
    assert np.max(probs) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    data=arrays(
        dtype=float,
        shape=st.tuples(st.integers(3, 12), st.integers(1, 5)),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
)
def test_minmax_normaliser_output_range(data):
    scaled = MinMaxNormalizer().fit_transform(data)
    assert scaled.min() >= -1e-12
    assert scaled.max() <= 1.0 + 1e-12


@settings(max_examples=20, deadline=None)
@given(
    data=arrays(
        dtype=float,
        shape=st.tuples(st.integers(5, 15), st.integers(2, 6)),
        elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
)
def test_pca_projection_shape_and_finiteness(data):
    n_components = min(2, data.shape[1])
    projected = PCA(n_components).fit_transform(data)
    assert projected.shape == (data.shape[0], n_components)
    assert np.all(np.isfinite(projected))
