"""Smoke tests keeping the ``benchmarks/bench_*.py`` scripts from rotting.

The benchmark scripts are not collected by the default test run (their file
names do not match ``test_*.py``), so an API change could silently break
them.  These tests import every bench module and run the perf-benchmark
entry points at tiny size; the full-size executions are available behind the
``slow`` marker (``pytest -m slow tests/benchmarks``), which the default
suite excludes.
"""

import importlib.util
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
BENCH_MODULES = sorted(path.stem for path in BENCH_DIR.glob("bench_*.py"))


def load_bench_module(name: str):
    """Import one benchmark script by path (benchmarks/ is not a package)."""
    path = BENCH_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"bench_smoke_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_benchmark_directory_is_populated():
    assert len(BENCH_MODULES) >= 15


@pytest.mark.parametrize("name", BENCH_MODULES)
def test_bench_module_imports_and_exposes_an_entry_point(name):
    """Every bench script must import cleanly and define a runnable entry."""
    module = load_bench_module(name)
    entry_points = [
        attr
        for attr, value in vars(module).items()
        if callable(value) and (attr.startswith("run_") or attr.startswith("test_"))
    ]
    assert entry_points, f"benchmarks/{name}.py defines no runnable entry point"


class TestPerfBenchEntryPointsTiny:
    """Run the perf benchmarks' entry points on shrunken workloads."""

    def test_gradient_sweep(self):
        module = load_bench_module("bench_gradient_sweep")
        payload = module.run_gradient_sweep_benchmark(epochs=1)
        assert payload["workload"]["epochs"] == 1
        assert payload["max_weight_diff"] < 1e-10
        assert payload["max_epoch_loss_diff"] < 1e-10
        assert payload["batched_seconds"] > 0

    def test_swap_test_sweep(self):
        module = load_bench_module("bench_swap_test_sweep")
        module.TRAIN_EPOCHS = 1
        module.SHOTS_GRID = (64, None)
        module.REPETITIONS = 1
        payload = module.run_swap_test_sweep_benchmark()
        assert payload["exact_max_diff"] < 1e-12
        assert payload["sampled_seed_match"] is True
        assert payload["noisy_seed_match"] is True

    def test_noisy_sweep(self):
        module = load_bench_module("bench_noisy_sweep")
        module.TRAIN_EPOCHS = 1
        module.REPETITIONS = 1
        module.SAMPLE_LIMIT = 4
        payload = module.run_noisy_sweep_benchmark()
        assert payload["workload"]["num_samples"] == 4
        assert payload["seed_match"] is True
        # Whole-grid sweeps transpile one symbolic template per sweep on a
        # fresh backend: exactly one miss, no per-element lookups.
        assert payload["transpile_cache"]["misses"] == 1

    def test_grid_sweep(self):
        module = load_bench_module("bench_grid_sweep")
        module.TRAIN_EPOCHS = 1
        module.REPETITIONS = 1
        module.SHIFT_ROWS = 2
        module.SAMPLE_LIMIT = 4
        payload = module.run_iris_grid_benchmark()
        assert payload["workload"]["grid_elements"] == 8
        assert payload["sampled"]["seed_match"] is True
        assert payload["sampled"]["seed_match_vs_stream"] is True
        assert payload["noisy"]["seed_match"] is True
        memory = module.run_grid_memory_benchmark(
            rows=2, samples=4, budget_amplitudes=2**19
        )
        assert memory["shared_prefix_steps"] > 0
        assert (
            memory["element_contractions"] < memory["element_contractions_unshared"]
        )
        assert memory["measured_peak_bytes"] > 0

    def test_shard_scaling(self):
        module = load_bench_module("bench_shard_scaling")
        payload = module.run_shard_scaling_benchmark(
            sites=("ibmq_london", "ibmq_rome"),
            epochs=1,
            samples_per_class=2,
            shots=64,
            queue_latency_seconds=0.02,
            worker_counts=(2,),
        )
        assert payload["rows_bit_identical"] is True
        assert payload["compute_bound_fit"]["weights_bit_identical"] is True
        assert payload["workload"]["sites"] == ["ibmq_london", "ibmq_rome"]
        assert payload["worker_seconds"]["2"] > 0
        assert payload["jobs_per_cell"] > 0

    def test_program_compile(self):
        module = load_bench_module("bench_program_compile")
        module.TRAIN_EPOCHS = 1
        module.REPEAT_SWEEPS = 1
        payload_repeat = module.run_repeat_sweep_benchmark()
        assert payload_repeat["seed_match_vs_runbatch"] is True
        assert payload_repeat["noise_plans_compiled"] == 1
        assert payload_repeat["transpile_cache"]["misses"] == 1
        payload_tiling = module.run_mnist_tiling_benchmark(
            rows=2, samples=4, budget_amplitudes=2**18
        )
        assert payload_tiling["seed_match_tiled_vs_untiled"] is True
        assert payload_tiling["tiled_peak_bytes"] < payload_tiling["untiled_peak_bytes"]


class TestBenchJsonReporting:
    """The shared perf-point writer and the emitted BENCH_*.json schema."""

    def test_figure_runs_emit_valid_perf_points(self, tmp_path):
        """The conftest figure path writes schema-valid JSON perf points."""
        from repro.experiments.harness import ExperimentResult
        from repro.experiments.reporting import (
            experiment_perf_payload,
            validate_perf_payload,
            write_perf_point,
        )

        result = ExperimentResult(experiment_id="fig_test", title="smoke figure")
        result.add_series("curve", [1, 2, 3], [0.5, 0.6, 0.7])
        result.add_row(model="QC-S", test_accuracy=0.9)
        result.metadata["seed"] = 0
        payload = experiment_perf_payload(result, seconds=0.01)
        path = write_perf_point(str(tmp_path), result.experiment_id, payload)
        import json

        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert validate_perf_payload(loaded) == []
        assert loaded["benchmark"] == "fig_test"
        assert loaded["seconds"] == pytest.approx(0.01)
        assert loaded["rows"][0]["test_accuracy"] == pytest.approx(0.9)

    def test_validator_flags_broken_payloads(self):
        from repro.experiments.reporting import validate_perf_payload

        assert validate_perf_payload([]) != []
        assert validate_perf_payload({}) != []
        problems = validate_perf_payload(
            {"benchmark": "x", "recorded_at": "now", "value": float("nan")}
        )
        assert any("non-finite" in problem for problem in problems)

    def test_existing_bench_reports_validate(self):
        """Every BENCH_*.json already on disk passes the schema check."""
        import json

        from repro.experiments.reporting import validate_perf_payload

        results_dir = BENCH_DIR / "results"
        reports = sorted(results_dir.glob("BENCH_*.json"))
        assert reports, "no BENCH_*.json perf points recorded yet"
        for report in reports:
            with open(report, encoding="utf-8") as handle:
                payload = json.load(handle)
            assert validate_perf_payload(payload) == [], f"{report.name} is invalid"


@pytest.mark.slow
class TestPerfBenchFullSize:
    """Full-size benchmark runs (opt-in: ``pytest -m slow tests/benchmarks``)."""

    def test_noisy_sweep_meets_speedup_floor(self):
        module = load_bench_module("bench_noisy_sweep")
        payload = module.run_noisy_sweep_benchmark()
        assert payload["seed_match"] is True
        assert payload["speedup_vs_loop"] >= module.MIN_SPEEDUP

    def test_shard_scaling_meets_speedup_floor(self):
        module = load_bench_module("bench_shard_scaling")
        payload = module.run_shard_scaling_benchmark()
        assert payload["rows_bit_identical"] is True
        assert payload["speedup_at_max_workers"] >= module.MIN_SPEEDUP


class TestStaticAnalysisOverBenchmarks:
    """The analysis CLI must round-trip schema-valid JSON over the tree."""

    def test_cli_json_is_schema_valid_and_clean(self):
        import json
        import os
        import subprocess
        import sys

        from repro.analysis.report import validate_findings_payload

        repo_root = BENCH_DIR.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "benchmarks", "--format", "json"],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert validate_findings_payload(payload) == []
        assert payload["summary"]["errors"] == 0

    def test_every_bench_script_reports_a_perf_point(self):
        """REP005 over benchmarks/: no silent benchmarks."""
        from repro.analysis.lint import lint_paths
        from repro.analysis.rules import select_rules

        result = lint_paths(
            [str(BENCH_DIR)], select_rules(["REP005"]), root=str(BENCH_DIR.parent)
        )
        assert result.files_checked >= 15
        assert result.diagnostics == [], "\n".join(
            d.format() for d in result.diagnostics
        )
