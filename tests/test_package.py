"""Package-level tests: version, lazy exports, exception hierarchy."""

import pytest

import repro
from repro import exceptions


class TestPackageMetadata:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_lazy_top_level_exports(self):
        assert repro.QuClassi.__name__ == "QuClassi"
        assert repro.QuantumCircuit.__name__ == "QuantumCircuit"
        assert repro.Statevector.__name__ == "Statevector"
        assert repro.IdealBackend.__name__ == "IdealBackend"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.DoesNotExist


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "CircuitError",
            "SimulationError",
            "EncodingError",
            "TranspilerError",
            "BackendError",
            "TrainingError",
            "DatasetError",
            "ValidationError",
        ):
            error_type = getattr(exceptions, name)
            assert issubclass(error_type, exceptions.ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(exceptions.ValidationError, ValueError)

    def test_catching_base_catches_subclasses(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.CircuitError("boom")


class TestPublicApiSurfaces:
    def test_quantum_all_exports_importable(self):
        import repro.quantum as quantum

        for name in quantum.__all__:
            assert hasattr(quantum, name), name

    def test_core_all_exports_importable(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_encoding_all_exports_importable(self):
        import repro.encoding as encoding

        for name in encoding.__all__:
            assert hasattr(encoding, name), name

    def test_datasets_all_exports_importable(self):
        import repro.datasets as datasets

        for name in datasets.__all__:
            assert hasattr(datasets, name), name

    def test_baselines_all_exports_importable(self):
        import repro.baselines as baselines

        for name in baselines.__all__:
            assert hasattr(baselines, name), name

    def test_hardware_all_exports_importable(self):
        import repro.hardware as hardware

        for name in hardware.__all__:
            assert hasattr(hardware, name), name

    def test_experiments_all_exports_importable(self):
        import repro.experiments as experiments

        for name in experiments.__all__:
            assert hasattr(experiments, name), name
