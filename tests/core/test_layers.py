"""Tests for the QC-S / QC-D / QC-E layer specifications."""

import numpy as np
import pytest

from repro.core.layers import (
    DualQubitUnitaryLayer,
    EntanglementLayer,
    LayerStack,
    SingleQubitUnitaryLayer,
    layers_from_architecture,
)
from repro.exceptions import ValidationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Parameter
from repro.quantum.statevector import Statevector


class TestParameterCounts:
    def test_single_qubit_layer(self):
        layer = SingleQubitUnitaryLayer()
        assert layer.num_parameters(1) == 2
        assert layer.num_parameters(8) == 16

    def test_dual_qubit_layer(self):
        layer = DualQubitUnitaryLayer()
        assert layer.num_parameters(2) == 2
        assert layer.num_parameters(8) == 14
        assert layer.num_parameters(1) == 0

    def test_entanglement_layer(self):
        layer = EntanglementLayer()
        assert layer.num_parameters(2) == 2
        assert layer.num_parameters(4) == 6

    def test_invalid_qubit_count(self):
        with pytest.raises(ValidationError):
            SingleQubitUnitaryLayer().num_parameters(0)


class TestLayerApplication:
    def test_single_layer_gate_types(self):
        circuit = QuantumCircuit(2)
        params = [Parameter(f"p{i}") for i in range(4)]
        SingleQubitUnitaryLayer().apply(circuit, [0, 1], params)
        assert circuit.count_ops() == {"ry": 2, "rz": 2}

    def test_dual_layer_shares_parameters_across_pair(self):
        circuit = QuantumCircuit(2)
        params = [Parameter("a"), Parameter("b")]
        DualQubitUnitaryLayer().apply(circuit, [0, 1], params)
        # The same parameter appears on both qubits of the pair.
        ry_params = [inst.params[0] for inst in circuit.instructions if inst.name == "ry"]
        assert ry_params == [Parameter("a"), Parameter("a")]

    def test_entanglement_layer_gate_types(self):
        circuit = QuantumCircuit(3)
        params = [Parameter(f"p{i}") for i in range(4)]
        EntanglementLayer().apply(circuit, [0, 1, 2], params)
        assert circuit.count_ops() == {"cry": 2, "crz": 2}

    def test_wrong_parameter_count_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValidationError):
            SingleQubitUnitaryLayer().apply(circuit, [0, 1], [Parameter("a")])

    def test_entanglement_layer_creates_entanglement(self):
        """CRY/CRZ layers can entangle qubits, unlike the single-qubit layer."""
        circuit = QuantumCircuit(2)
        SingleQubitUnitaryLayer().apply(circuit, [0, 1], [1.0, 0.5, 0.7, 0.2])
        EntanglementLayer().apply(circuit, [0, 1], [2.0, 1.5])
        state = Statevector(2).evolve(circuit)
        from repro.quantum.density_matrix import DensityMatrix

        reduced = DensityMatrix(state).partial_trace([0])
        assert reduced.purity() < 1.0 - 1e-6


class TestArchitectureParsing:
    def test_codes(self):
        layers = layers_from_architecture("sde")
        assert [type(layer) for layer in layers] == [
            SingleQubitUnitaryLayer,
            DualQubitUnitaryLayer,
            EntanglementLayer,
        ]

    def test_case_and_prefix_insensitive(self):
        assert len(layers_from_architecture("QC-SD")) == 2

    def test_repeated_codes(self):
        assert len(layers_from_architecture("ss")) == 2

    def test_unknown_code_rejected(self):
        with pytest.raises(ValidationError):
            layers_from_architecture("sx")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            layers_from_architecture("")


class TestLayerStack:
    def test_parameter_count_sums_layers(self):
        stack = LayerStack.from_architecture("sde", num_qubits=4)
        expected = 2 * 4 + 2 * 3 + 2 * 3
        assert stack.num_parameters == expected

    def test_paper_qc_s_parameter_count(self):
        """QC-S on 8 trained qubits has 16 parameters per class (paper Section 5.3.1)."""
        assert LayerStack.from_architecture("s", num_qubits=8).num_parameters == 16

    def test_parameters_are_unique_and_ordered(self):
        stack = LayerStack.from_architecture("sd", num_qubits=3)
        params = stack.parameters()
        assert len(params) == len(set(params)) == stack.num_parameters

    def test_build_circuit_uses_requested_qubits(self):
        stack = LayerStack.from_architecture("s", num_qubits=2)
        circuit = stack.build_circuit(qubits=[1, 2], total_qubits=5)
        used = {q for inst in circuit.instructions for q in inst.qubits}
        assert used == {1, 2}
        assert circuit.num_qubits == 5

    def test_build_circuit_wrong_register_width(self):
        stack = LayerStack.from_architecture("s", num_qubits=2)
        with pytest.raises(ValidationError):
            stack.build_circuit(qubits=[0, 1, 2], total_qubits=3)

    def test_architecture_string_round_trip(self):
        assert LayerStack.from_architecture("sde", 2).architecture == "sde"

    def test_stack_requires_layers(self):
        with pytest.raises(ValidationError):
            LayerStack(layers=[], num_qubits=2)

    def test_bound_circuit_prepares_unit_norm_state(self):
        stack = LayerStack.from_architecture("sde", num_qubits=3)
        circuit = stack.build_circuit(qubits=range(3), total_qubits=3)
        values = np.linspace(0.1, 2.0, stack.num_parameters)
        bound = circuit.assign_parameters(values)
        state = Statevector(3).evolve(bound)
        assert state.norm() == pytest.approx(1.0)
