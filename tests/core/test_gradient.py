"""Tests for the gradient rules (paper Eq. 15)."""

import math

import numpy as np
import pytest

from repro.core.gradient import (
    EpochScaledShiftRule,
    FiniteDifferenceRule,
    ParameterShiftRule,
    resolve_gradient_rule,
)
from repro.exceptions import ValidationError


def quadratic_loss(parameters: np.ndarray) -> float:
    """Simple convex loss with known gradient 2 * (theta - 1)."""
    return float(np.sum((parameters - 1.0) ** 2))


class TestShiftSchedules:
    def test_epoch_scaled_shift_shrinks(self):
        rule = EpochScaledShiftRule()
        shifts = [rule.shift(epoch) for epoch in (1, 4, 9, 16)]
        assert shifts[0] == pytest.approx(math.pi / 2)
        assert shifts[1] == pytest.approx(math.pi / 4)
        assert shifts[2] == pytest.approx(math.pi / 6)
        assert all(b < a for a, b in zip(shifts, shifts[1:]))

    def test_epoch_scaled_shift_has_floor(self):
        rule = EpochScaledShiftRule(minimum_shift=0.01)
        assert rule.shift(10**9) == pytest.approx(0.01)

    def test_parameter_shift_is_constant(self):
        rule = ParameterShiftRule()
        assert rule.shift(1) == rule.shift(100) == pytest.approx(math.pi / 2)

    def test_invalid_epoch_rejected(self):
        with pytest.raises(ValidationError):
            EpochScaledShiftRule().shift(0)


class TestGradientEstimates:
    def test_gradient_sign_points_uphill(self):
        rule = EpochScaledShiftRule()
        gradient = rule.gradient(quadratic_loss, np.array([3.0, -1.0]), epoch=1)
        # Loss increases away from 1, so the gradient is positive at 3 and negative at -1.
        assert gradient[0] > 0
        assert gradient[1] < 0

    def test_descent_step_reduces_quadratic_loss(self):
        rule = EpochScaledShiftRule()
        parameters = np.array([2.5, 0.0, -1.0])
        for epoch in range(1, 30):
            gradient = rule.gradient(quadratic_loss, parameters, epoch=epoch)
            parameters = parameters - 0.1 * gradient
        assert quadratic_loss(parameters) < 0.05

    def test_finite_difference_matches_true_gradient(self):
        rule = FiniteDifferenceRule(step=1e-5)
        point = np.array([3.0, 0.5])
        gradient = rule.gradient(quadratic_loss, point, epoch=1)
        np.testing.assert_allclose(gradient, 2 * (point - 1.0), atol=1e-5)

    def test_gradient_at_minimum_is_zero(self):
        rule = ParameterShiftRule()
        gradient = rule.gradient(quadratic_loss, np.array([1.0, 1.0]), epoch=1)
        np.testing.assert_allclose(gradient, [0.0, 0.0], atol=1e-9)

    def test_two_evaluations_per_parameter(self):
        calls = []

        def counting_loss(parameters):
            calls.append(parameters.copy())
            return quadratic_loss(parameters)

        EpochScaledShiftRule().gradient(counting_loss, np.zeros(3), epoch=1)
        assert len(calls) == 6

    def test_non_flat_parameters_rejected(self):
        with pytest.raises(ValidationError):
            EpochScaledShiftRule().gradient(quadratic_loss, np.zeros((2, 2)), epoch=1)

    def test_parameter_shift_is_exact_for_sinusoidal_loss(self):
        """For losses of the form cos(theta), the pi/2 shift rule is exact."""

        def sinusoidal(parameters):
            return float(np.cos(parameters[0]))

        theta = 0.7
        gradient = ParameterShiftRule().gradient(sinusoidal, np.array([theta]), epoch=1)
        assert gradient[0] == pytest.approx(-math.sin(theta), abs=1e-9)


class TestResolveGradientRule:
    def test_names(self):
        assert isinstance(resolve_gradient_rule("epoch_scaled"), EpochScaledShiftRule)
        assert isinstance(resolve_gradient_rule("parameter_shift"), ParameterShiftRule)
        assert isinstance(resolve_gradient_rule("finite_difference"), FiniteDifferenceRule)

    def test_instance_passthrough(self):
        rule = ParameterShiftRule()
        assert resolve_gradient_rule(rule) is rule

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            resolve_gradient_rule("adam")


class TestBatchedGradient:
    """The batched path must reproduce the loop path exactly."""

    def multi_quadratic(self, parameter_matrix):
        return np.array([quadratic_loss(row) for row in parameter_matrix])

    def test_shifted_parameter_matrix_layout(self):
        rule = ParameterShiftRule(fixed_shift=0.5)
        parameters = np.array([1.0, 2.0, 3.0])
        stacked = rule.shifted_parameter_matrix(parameters, epoch=1)
        assert stacked.shape == (6, 3)
        np.testing.assert_allclose(stacked[0], [1.5, 2.0, 3.0])
        np.testing.assert_allclose(stacked[3], [0.5, 2.0, 3.0])
        np.testing.assert_allclose(stacked[5], [1.0, 2.0, 2.5])

    @pytest.mark.parametrize(
        "rule",
        [EpochScaledShiftRule(), ParameterShiftRule(), FiniteDifferenceRule(step=1e-5)],
    )
    def test_batched_matches_loop(self, rule):
        parameters = np.array([2.5, -0.3, 0.8])
        loop = rule.gradient(quadratic_loss, parameters, epoch=3)
        batched = rule.gradient_batched(self.multi_quadratic, parameters, epoch=3)
        np.testing.assert_allclose(batched, loop, atol=1e-12)

    def test_single_multi_loss_call(self):
        calls = []

        def counting_multi_loss(parameter_matrix):
            calls.append(parameter_matrix.shape)
            return self.multi_quadratic(parameter_matrix)

        EpochScaledShiftRule().gradient_batched(counting_multi_loss, np.zeros(4), epoch=1)
        assert calls == [(8, 4)]

    def test_wrong_loss_count_rejected(self):
        with pytest.raises(ValidationError):
            EpochScaledShiftRule().gradient_batched(
                lambda matrix: np.zeros(3), np.zeros(2), epoch=1
            )

    def test_non_flat_parameters_rejected(self):
        with pytest.raises(ValidationError):
            EpochScaledShiftRule().gradient_batched(self.multi_quadratic, np.zeros((2, 2)))
