"""Tests for the fidelity-based cost functions."""

import numpy as np
import pytest

from repro.core.cost import FidelityCrossEntropy, NegativeFidelityCost, resolve_cost
from repro.exceptions import ValidationError


class TestFidelityCrossEntropy:
    def test_perfect_fidelity_for_positive_sample_is_cheap(self):
        cost = FidelityCrossEntropy()
        assert cost([1.0], [1.0]) < 1e-6

    def test_zero_fidelity_for_positive_sample_is_expensive(self):
        cost = FidelityCrossEntropy()
        assert cost([0.0], [1.0]) > 10.0

    def test_negative_samples_push_fidelity_down(self):
        cost = FidelityCrossEntropy()
        assert cost([0.9], [0.0]) > cost([0.1], [0.0])

    def test_matches_paper_equation_14(self):
        cost = FidelityCrossEntropy()
        fidelity, target = 0.7, 1.0
        assert cost([fidelity], [target]) == pytest.approx(-np.log(0.7))
        fidelity, target = 0.7, 0.0
        assert cost([fidelity], [target]) == pytest.approx(-np.log(0.3))

    def test_mean_over_batch(self):
        cost = FidelityCrossEntropy()
        batch = cost([0.8, 0.2], [1.0, 0.0])
        expected = np.mean([-np.log(0.8), -np.log(0.8)])
        assert batch == pytest.approx(expected)

    def test_extreme_fidelities_do_not_produce_infinities(self):
        cost = FidelityCrossEntropy()
        assert np.isfinite(cost([0.0, 1.0], [1.0, 0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            FidelityCrossEntropy()([0.5, 0.5], [1.0])

    def test_per_sample_matches_mean(self):
        cost = FidelityCrossEntropy()
        fidelities = np.array([0.9, 0.4, 0.6])
        targets = np.array([1.0, 0.0, 1.0])
        assert np.mean(cost.per_sample(fidelities, targets)) == pytest.approx(
            cost(fidelities, targets)
        )


class TestNegativeFidelityCost:
    def test_only_positive_samples_matter(self):
        cost = NegativeFidelityCost()
        assert cost([0.9, 0.1], [1.0, 0.0]) == pytest.approx(0.1)

    def test_no_positive_samples_gives_zero(self):
        assert NegativeFidelityCost()([0.5], [0.0]) == 0.0

    def test_decreases_as_fidelity_increases(self):
        cost = NegativeFidelityCost()
        assert cost([0.9], [1.0]) < cost([0.5], [1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            NegativeFidelityCost()([0.5], [1.0, 0.0])


class TestResolveCost:
    def test_resolves_names(self):
        assert isinstance(resolve_cost("cross_entropy"), FidelityCrossEntropy)
        assert isinstance(resolve_cost("negative_fidelity"), NegativeFidelityCost)

    def test_passes_through_callables(self):
        custom = FidelityCrossEntropy(epsilon=1e-6)
        assert resolve_cost(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            resolve_cost("hinge")


class TestBatchedCosts:
    def test_cross_entropy_batched_matches_per_row(self):
        cost = FidelityCrossEntropy()
        rng = np.random.default_rng(0)
        fidelity_matrix = rng.uniform(0.01, 0.99, size=(7, 5))
        targets = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
        batched = cost.batched(fidelity_matrix, targets)
        per_row = [cost(row, targets) for row in fidelity_matrix]
        np.testing.assert_allclose(batched, per_row, atol=1e-14)

    def test_negative_fidelity_batched_matches_per_row(self):
        cost = NegativeFidelityCost()
        rng = np.random.default_rng(1)
        fidelity_matrix = rng.uniform(0.0, 1.0, size=(4, 6))
        targets = np.array([1.0, 1.0, 0.0, 0.0, 1.0, 0.0])
        batched = cost.batched(fidelity_matrix, targets)
        per_row = [cost(row, targets) for row in fidelity_matrix]
        np.testing.assert_allclose(batched, per_row, atol=1e-14)

    def test_negative_fidelity_batched_no_positives(self):
        cost = NegativeFidelityCost()
        batched = cost.batched(np.ones((3, 2)), np.zeros(2))
        np.testing.assert_allclose(batched, np.zeros(3))

    def test_batched_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            FidelityCrossEntropy().batched(np.ones((2, 3)), np.zeros(4))
        with pytest.raises(ValidationError):
            NegativeFidelityCost().batched(np.ones((2, 3)), np.zeros(4))
