"""Tests for model persistence."""

import json

import numpy as np
import pytest

from repro.core import QuClassi
from repro.core.serialization import load_model, model_from_dict, model_to_dict, save_model
from repro.encoding import SingleAngleEncoder
from repro.exceptions import ValidationError


class TestRoundTrip:
    def test_save_and_load_preserves_predictions(self, tmp_path):
        model = QuClassi(num_features=4, num_classes=3, architecture="sd", seed=0)
        features = np.random.default_rng(0).uniform(0.1, 0.9, size=(5, 4))
        path = tmp_path / "model.json"
        model.save(str(path))
        restored = QuClassi.load(str(path))
        np.testing.assert_allclose(
            model.class_fidelities(features), restored.class_fidelities(features), atol=1e-12
        )

    def test_round_trip_preserves_configuration(self, tmp_path):
        model = QuClassi(
            num_features=6,
            num_classes=2,
            architecture="sde",
            encoder=SingleAngleEncoder(),
            temperature=0.5,
            seed=1,
        )
        path = tmp_path / "model.json"
        save_model(model, str(path))
        restored = load_model(str(path))
        assert restored.architecture == "sde"
        assert restored.num_features == 6
        assert isinstance(restored.encoder, SingleAngleEncoder)
        assert restored.temperature == pytest.approx(0.5)

    def test_file_is_readable_json(self, tmp_path):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        path = tmp_path / "model.json"
        save_model(model, str(path))
        payload = json.loads(path.read_text())
        assert payload["model"] == "QuClassi"
        assert payload["architecture"] == "s"

    def test_creates_parent_directories(self, tmp_path):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        nested = tmp_path / "a" / "b" / "model.json"
        save_model(model, str(nested))
        assert nested.exists()


class TestValidation:
    def test_missing_fields_rejected(self):
        with pytest.raises(ValidationError):
            model_from_dict({"model": "QuClassi"})

    def test_unknown_model_type_rejected(self):
        payload = model_to_dict(QuClassi(num_features=4, num_classes=2, seed=0))
        payload["model"] = "SomethingElse"
        with pytest.raises(ValidationError):
            model_from_dict(payload)

    def test_newer_format_rejected(self):
        payload = model_to_dict(QuClassi(num_features=4, num_classes=2, seed=0))
        payload["format_version"] = 999
        with pytest.raises(ValidationError):
            model_from_dict(payload)

    def test_unknown_encoder_rejected(self):
        payload = model_to_dict(QuClassi(num_features=4, num_classes=2, seed=0))
        payload["encoder"] = "holographic"
        with pytest.raises(ValidationError):
            model_from_dict(payload)

    def test_custom_encoder_cannot_be_serialised(self):
        from repro.encoding.base import DataEncoder

        class WeirdEncoder(DataEncoder):
            def num_qubits(self, num_features):
                return num_features

            def encoding_circuit(self, features, offset=0, total_qubits=None):
                raise NotImplementedError

        model = QuClassi(num_features=4, num_classes=2, encoder=WeirdEncoder(), seed=0)
        with pytest.raises(ValidationError):
            model_to_dict(model)
