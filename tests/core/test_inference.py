"""Tests for softmax inference over per-class fidelities."""

import numpy as np
import pytest

from repro.core.inference import (
    accuracy,
    confusion_matrix,
    fidelities_to_probabilities,
    predict_from_fidelities,
)
from repro.exceptions import ValidationError


class TestFidelitiesToProbabilities:
    def test_rows_sum_to_one(self):
        fidelities = np.array([[0.9, 0.2, 0.4], [0.1, 0.8, 0.3]])
        probabilities = fidelities_to_probabilities(fidelities)
        np.testing.assert_allclose(probabilities.sum(axis=1), [1.0, 1.0])

    def test_highest_fidelity_gets_highest_probability(self):
        probabilities = fidelities_to_probabilities(np.array([0.9, 0.2, 0.4]))
        assert np.argmax(probabilities) == 0

    def test_single_sample_returns_1d(self):
        assert fidelities_to_probabilities(np.array([0.5, 0.5])).ndim == 1

    def test_temperature_sharpens(self):
        fidelities = np.array([0.8, 0.6])
        soft = fidelities_to_probabilities(fidelities, temperature=1.0)
        sharp = fidelities_to_probabilities(fidelities, temperature=0.1)
        assert sharp[0] > soft[0]

    def test_invalid_temperature(self):
        with pytest.raises(ValidationError):
            fidelities_to_probabilities(np.array([0.5, 0.5]), temperature=0.0)

    def test_invalid_rank(self):
        with pytest.raises(ValidationError):
            fidelities_to_probabilities(np.zeros((2, 2, 2)))


class TestPredictions:
    def test_argmax_prediction(self):
        fidelities = np.array([[0.9, 0.1], [0.3, 0.7]])
        np.testing.assert_array_equal(predict_from_fidelities(fidelities), [0, 1])

    def test_single_sample(self):
        np.testing.assert_array_equal(predict_from_fidelities(np.array([0.1, 0.9])), [1])

    def test_accuracy(self):
        assert accuracy(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0])) == pytest.approx(0.75)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy(np.array([], dtype=int), np.array([], dtype=int))

    def test_confusion_matrix(self):
        predictions = np.array([0, 1, 1, 2, 2, 2])
        labels = np.array([0, 1, 2, 2, 2, 0])
        matrix = confusion_matrix(predictions, labels, num_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[2, 2] == 2
        assert matrix[0, 2] == 1
        assert matrix.sum() == 6
