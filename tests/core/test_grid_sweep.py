"""Whole-grid SweepProgram path of the SWAP-test estimator.

The tentpole guarantee: routing a ``(rows x samples)`` fidelity sweep
through ONE compiled program — encoder angles as bind columns, trained
prefix evolved once per tile and broadcast — must be **draw-for-draw
bit-identical** to the per-sample circuit stream it replaces, on every
backend, with and without certified fusion, and under any tile budget.
"""

import numpy as np
import pytest

from repro.core.circuit_builder import DiscriminatorCircuitBuilder
from repro.core.layers import LayerStack
from repro.core.swap_test import AnalyticFidelityEstimator, SwapTestFidelityEstimator
from repro.encoding import DualAngleEncoder, SingleAngleEncoder
from repro.hardware import ibmq_london
from repro.quantum.backend import IdealBackend, SampledBackend
from repro.quantum.program import OPTIMIZE_PROGRAMS_ENV


def make_builder(encoder=None, num_features: int = 4, architecture: str = "s"):
    encoder = encoder if encoder is not None else DualAngleEncoder()
    stack = LayerStack.from_architecture(architecture, encoder.num_qubits(num_features))
    return DiscriminatorCircuitBuilder(stack, encoder, num_features)


@pytest.fixture()
def builder():
    return make_builder()


@pytest.fixture()
def parameter_matrix(builder):
    rng = np.random.default_rng(41)
    return rng.uniform(0, np.pi, size=(3, builder.num_parameters))


@pytest.fixture()
def samples():
    rng = np.random.default_rng(42)
    return rng.uniform(0.05, 0.95, size=(4, 4))


BACKENDS = {
    "analytic": lambda: (IdealBackend(), None),
    "sampled": lambda: (SampledBackend(shots=200, seed=9), 200),
    "noisy": lambda: (ibmq_london(seed=9), 128),
}
#: Budgets spanning one-element tiles up to the whole grid in one tile.
BUDGETS = {
    "tight": lambda builder: 2 ** builder.layout.total_qubits * 4,
    "medium": lambda builder: 2 ** (2 * builder.layout.total_qubits) * 4,
    "roomy": lambda builder: SwapTestFidelityEstimator.DEFAULT_MAX_BATCH_AMPLITUDES,
}


def grid_and_stream(builder, backend_key, budget, optimize):
    """(grid estimator, stream-forced twin) with fresh same-seeded backends."""
    estimators = []
    for force_stream in (False, True):
        backend, shots = BACKENDS[backend_key]()
        estimator = SwapTestFidelityEstimator(
            builder, backend=backend, shots=shots, max_batch_amplitudes=budget
        )
        if force_stream:
            estimator.backend.supports_grid_programs = False
        estimators.append(estimator)
    return estimators


class TestGridMatchesStreamBitwise:
    @pytest.mark.parametrize("backend_key", sorted(BACKENDS))
    @pytest.mark.parametrize("budget_key", sorted(BUDGETS))
    @pytest.mark.parametrize("optimize", ["0", "1"])
    def test_grid_sweep_is_bit_identical_to_stream(
        self, builder, parameter_matrix, samples, backend_key, budget_key, optimize, monkeypatch
    ):
        monkeypatch.setenv(OPTIMIZE_PROGRAMS_ENV, optimize)
        budget = BUDGETS[budget_key](builder)
        grid, stream = grid_and_stream(builder, backend_key, budget, optimize)
        assert grid.backend.supports_grid_programs is True
        grid_matrix = grid.fidelity_matrix(parameter_matrix, samples)
        stream_matrix = stream.fidelity_matrix(parameter_matrix, samples)
        np.testing.assert_array_equal(grid_matrix, stream_matrix)

    def test_single_angle_encoder_grid_matches_stream(self, monkeypatch):
        monkeypatch.delenv(OPTIMIZE_PROGRAMS_ENV, raising=False)
        builder = make_builder(SingleAngleEncoder())
        rng = np.random.default_rng(43)
        matrix = rng.uniform(0, np.pi, size=(2, builder.num_parameters))
        features = rng.uniform(0.05, 0.95, size=(3, 4))
        grid, stream = grid_and_stream(builder, "sampled", 2**20, "0")
        np.testing.assert_array_equal(
            grid.fidelity_matrix(matrix, features),
            stream.fidelity_matrix(matrix, features),
        )

    def test_fidelities_row_delegates_to_the_grid(self, builder, samples):
        rng = np.random.default_rng(44)
        values = rng.uniform(0, np.pi, builder.num_parameters)
        grid, stream = grid_and_stream(builder, "noisy", 2**23, "0")
        np.testing.assert_array_equal(
            grid.fidelities(values, samples), stream.fidelities(values, samples)
        )

    def test_empty_grid_short_circuits(self, builder, parameter_matrix):
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        empty = estimator.fidelity_matrix(parameter_matrix, np.zeros((0, 4)))
        assert empty.shape == (parameter_matrix.shape[0], 0)
        assert estimator.circuits_executed == 0

    def test_grid_builds_no_per_sample_circuits(self, builder, parameter_matrix, samples):
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        estimator.fidelity_matrix(parameter_matrix, samples)
        assert len(builder._data_bound_cache) == 0  # the point of the grid path
        assert estimator.circuits_executed == parameter_matrix.shape[0] * samples.shape[0]


class TestGridBindings:
    def test_row_major_layout_matches_the_stream_order(self, builder, parameter_matrix, samples):
        bindings = builder.grid_bindings(parameter_matrix, samples)
        rows, params = parameter_matrix.shape
        angles = builder.encoder.angle_matrix(samples)
        assert bindings.shape == (rows * samples.shape[0], params + angles.shape[1])
        for row in range(rows):
            for sample in range(samples.shape[0]):
                flat = row * samples.shape[0] + sample
                np.testing.assert_array_equal(bindings[flat, :params], parameter_matrix[row])
                np.testing.assert_array_equal(bindings[flat, params:], angles[sample])

    def test_angle_columns_are_bitwise_the_loop_angles(self, builder, samples):
        from repro.encoding.angle import rotation_angle

        angles = builder.encoder.angle_matrix(samples)
        for row in range(samples.shape[0]):
            for column in range(samples.shape[1]):
                assert angles[row, column] == rotation_angle(samples[row, column])


class TestVectorisedDataStates:
    def test_batched_matrix_matches_per_row_loop(self, builder, samples):
        estimator = AnalyticFidelityEstimator(builder)
        batched = estimator.data_state_matrix(samples)
        loop = np.stack([estimator.data_statevector(row).data for row in samples])
        np.testing.assert_allclose(batched, loop, atol=1e-12)

    def test_non_column_encoder_falls_back_to_the_loop(self, samples):
        class LoopOnlyEncoder(DualAngleEncoder):
            supports_angle_columns = False

        builder = make_builder(LoopOnlyEncoder())
        estimator = AnalyticFidelityEstimator(builder)
        batched = estimator.data_state_matrix(samples)
        loop = np.stack([estimator.data_statevector(row).data for row in samples])
        np.testing.assert_array_equal(batched, loop)
