"""Tests for the fidelity estimators used during training."""

import numpy as np
import pytest

from repro.core.circuit_builder import DiscriminatorCircuitBuilder
from repro.core.layers import LayerStack
from repro.core.swap_test import AnalyticFidelityEstimator, SwapTestFidelityEstimator
from repro.encoding import DualAngleEncoder
from repro.exceptions import ValidationError
from repro.hardware import ibmq_london
from repro.quantum.backend import IdealBackend, SampledBackend


def make_builder(num_features: int = 4, architecture: str = "s") -> DiscriminatorCircuitBuilder:
    encoder = DualAngleEncoder()
    stack = LayerStack.from_architecture(architecture, encoder.num_qubits(num_features))
    return DiscriminatorCircuitBuilder(stack, encoder, num_features)


@pytest.fixture()
def builder():
    return make_builder()


@pytest.fixture()
def parameters(builder):
    rng = np.random.default_rng(1)
    return rng.uniform(0, np.pi, builder.num_parameters)


@pytest.fixture()
def samples():
    rng = np.random.default_rng(2)
    return rng.uniform(0.05, 0.95, size=(6, 4))


class TestAnalyticEstimator:
    def test_fidelity_in_unit_interval(self, builder, parameters, samples):
        estimator = AnalyticFidelityEstimator(builder)
        values = estimator.fidelities(parameters, samples)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_batch_matches_single_sample_calls(self, builder, parameters, samples):
        estimator = AnalyticFidelityEstimator(builder)
        batch = estimator.fidelities(parameters, samples)
        singles = [estimator.fidelity(parameters, row) for row in samples]
        np.testing.assert_allclose(batch, singles, atol=1e-12)

    def test_agrees_with_swap_test_circuit(self, builder, parameters, samples):
        analytic = AnalyticFidelityEstimator(builder)
        circuit_based = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        np.testing.assert_allclose(
            analytic.fidelities(parameters, samples),
            circuit_based.fidelities(parameters, samples),
            atol=1e-9,
        )

    def test_agrees_with_swap_test_for_deeper_architecture(self, samples):
        builder = make_builder(architecture="sde")
        rng = np.random.default_rng(5)
        parameters = rng.uniform(0, np.pi, builder.num_parameters)
        analytic = AnalyticFidelityEstimator(builder)
        circuit_based = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        np.testing.assert_allclose(
            analytic.fidelities(parameters, samples),
            circuit_based.fidelities(parameters, samples),
            atol=1e-9,
        )

    def test_data_state_cache_reused(self, builder, parameters, samples):
        estimator = AnalyticFidelityEstimator(builder)
        estimator.fidelities(parameters, samples)
        cache_size = len(estimator._data_state_cache)
        estimator.fidelities(parameters + 0.1, samples)
        assert len(estimator._data_state_cache) == cache_size

    def test_clear_cache(self, builder, parameters, samples):
        estimator = AnalyticFidelityEstimator(builder)
        estimator.fidelities(parameters, samples)
        estimator.clear_cache()
        assert len(estimator._data_state_cache) == 0

    def test_perfect_match_gives_unit_fidelity(self, builder):
        encoder = DualAngleEncoder()
        features = np.array([0.2, 0.5, 0.8, 0.3])
        angles = encoder.angles(features)
        estimator = AnalyticFidelityEstimator(builder)
        assert estimator.fidelity(angles, features) == pytest.approx(1.0, abs=1e-9)

    def test_compiled_program_matches_circuit_path(self, builder, parameters):
        estimator = AnalyticFidelityEstimator(builder)
        from repro.quantum.statevector import Statevector

        fast = estimator.trained_statevector(parameters)
        slow = Statevector(2).evolve(builder.trained_state_circuit(parameters))
        assert fast.fidelity(slow) == pytest.approx(1.0, abs=1e-12)


class TestSwapTestEstimator:
    def test_shot_noise_stays_close_to_exact(self, builder, parameters, samples):
        analytic = AnalyticFidelityEstimator(builder)
        sampled = SwapTestFidelityEstimator(builder, backend=IdealBackend(seed=0), shots=20000)
        exact = analytic.fidelities(parameters, samples)
        estimated = sampled.fidelities(parameters, samples)
        assert np.max(np.abs(exact - estimated)) < 0.05

    def test_counts_circuits_executed(self, builder, parameters, samples):
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(seed=0), shots=128)
        estimator.fidelities(parameters, samples)
        assert estimator.circuits_executed == len(samples)

    def test_invalid_shots_rejected(self, builder):
        with pytest.raises(ValidationError):
            SwapTestFidelityEstimator(builder, shots=0)

    def test_noisy_backend_biases_fidelity_downwards(self, builder):
        """Hardware noise dilutes the SWAP-test signal towards 0.5 ancilla probability."""
        encoder = DualAngleEncoder()
        features = np.array([0.2, 0.5, 0.8, 0.3])
        angles = encoder.angles(features)  # perfect match: ideal fidelity 1.0
        noisy = SwapTestFidelityEstimator(builder, backend=ibmq_london(seed=0), shots=None)
        value = noisy.fidelity(angles, features)
        assert value < 0.999
        assert value > 0.3


class TestAnalyticBatchedPath:
    def test_trained_statevectors_match_per_row(self, builder, samples):
        estimator = AnalyticFidelityEstimator(builder)
        rng = np.random.default_rng(9)
        matrix = rng.uniform(0, np.pi, size=(6, builder.num_parameters))
        batch = estimator.trained_statevectors(matrix)
        for index, row in enumerate(matrix):
            single = estimator.trained_statevector(row)
            np.testing.assert_allclose(
                batch.statevector(index).data, single.data, atol=1e-12
            )

    def test_fidelity_matrix_matches_loop(self, builder, samples):
        estimator = AnalyticFidelityEstimator(builder)
        rng = np.random.default_rng(10)
        matrix = rng.uniform(0, np.pi, size=(5, builder.num_parameters))
        batched = estimator.fidelity_matrix(matrix, samples)
        loop = np.stack([estimator.fidelities(row, samples) for row in matrix])
        assert batched.shape == (5, len(samples))
        np.testing.assert_allclose(batched, loop, atol=1e-12)

    def test_fidelity_matrix_deeper_architecture(self, samples):
        deep_builder = make_builder(architecture="sde")
        estimator = AnalyticFidelityEstimator(deep_builder)
        rng = np.random.default_rng(11)
        matrix = rng.uniform(0, np.pi, size=(4, deep_builder.num_parameters))
        np.testing.assert_allclose(
            estimator.fidelity_matrix(matrix, samples),
            np.stack([estimator.fidelities(row, samples) for row in matrix]),
            atol=1e-12,
        )

    def test_parameter_matrix_validation(self, builder, parameters, samples):
        estimator = AnalyticFidelityEstimator(builder)
        with pytest.raises(ValidationError):
            estimator.trained_statevectors(parameters)  # 1-D
        with pytest.raises(ValidationError):
            estimator.trained_statevectors(np.zeros((2, builder.num_parameters + 1)))

    def test_swap_test_fidelity_matrix_matches_loop(self, builder, samples):
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        assert estimator.supports_batch is True
        rng = np.random.default_rng(12)
        matrix = rng.uniform(0, np.pi, size=(2, builder.num_parameters))
        batched = estimator.fidelity_matrix(matrix, samples)
        loop = np.stack([estimator.fidelities(row, samples) for row in matrix])
        np.testing.assert_allclose(batched, loop, atol=1e-12)


class TestDataStateCacheBound:
    def test_cache_is_bounded_lru(self, builder, parameters):
        # fidelities() itself now evaluates angle-column encoders in one
        # batched program pass, so drive the per-row cache directly.
        estimator = AnalyticFidelityEstimator(builder, data_cache_size=2)
        rng = np.random.default_rng(13)
        samples = rng.uniform(0.05, 0.95, size=(5, 4))
        for row in samples:
            estimator.data_statevector(row)
        assert len(estimator._data_state_cache) == 2

    def test_recently_used_entries_survive(self, builder):
        estimator = AnalyticFidelityEstimator(builder, data_cache_size=2)
        a = np.array([0.1, 0.2, 0.3, 0.4])
        b = np.array([0.5, 0.6, 0.7, 0.8])
        c = np.array([0.9, 0.1, 0.2, 0.3])
        estimator.data_statevector(a)
        estimator.data_statevector(b)
        estimator.data_statevector(a)  # refresh a
        estimator.data_statevector(c)  # evicts b
        key_a = tuple(np.round(a, 12))
        key_b = tuple(np.round(b, 12))
        assert key_a in estimator._data_state_cache
        assert key_b not in estimator._data_state_cache

    def test_eviction_does_not_change_values(self, builder, parameters):
        bounded = AnalyticFidelityEstimator(builder, data_cache_size=1)
        unbounded = AnalyticFidelityEstimator(builder)
        rng = np.random.default_rng(14)
        samples = rng.uniform(0.05, 0.95, size=(4, 4))
        np.testing.assert_allclose(
            bounded.fidelities(parameters, samples),
            unbounded.fidelities(parameters, samples),
            atol=1e-12,
        )

    def test_invalid_cache_size_rejected(self, builder):
        with pytest.raises(ValidationError):
            AnalyticFidelityEstimator(builder, data_cache_size=0)


class TestSwapTestBatchedPath:
    """The SWAP-test estimator routes sweeps through the backend batch API."""

    def test_supports_batch_mirrors_the_backend(self, builder):
        assert SwapTestFidelityEstimator(builder, backend=IdealBackend()).supports_batch is True
        assert (
            SwapTestFidelityEstimator(builder, backend=SampledBackend(shots=64)).supports_batch
            is True
        )
        assert SwapTestFidelityEstimator(builder, backend=ibmq_london()).supports_batch is True

        class LoopOnlyBackend(IdealBackend):
            supports_batch = False

        assert (
            SwapTestFidelityEstimator(builder, backend=LoopOnlyBackend()).supports_batch is False
        )

    def test_supports_batch_tracks_backend_swaps(self, builder):
        """The flag is derived live — swapping the backend must update it."""

        class LoopOnlyBackend(IdealBackend):
            supports_batch = False

        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend())
        assert estimator.supports_batch is True
        estimator.backend = LoopOnlyBackend()
        assert estimator.supports_batch is False

    def test_supports_batch_assignment_pins_an_override(self, builder):
        """``estimator.supports_batch = False`` forces the loop path (trainer idiom)."""
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend())
        estimator.supports_batch = False
        assert estimator.supports_batch is False
        estimator.supports_batch = None  # resume tracking the backend
        assert estimator.supports_batch is True

    def test_exact_fidelities_match_per_circuit_loop(self, builder, parameters, samples):
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        batched = estimator.fidelities(parameters, samples)
        loop = np.array([estimator.fidelity(parameters, row) for row in samples])
        np.testing.assert_allclose(batched, loop, atol=1e-12)

    def test_sampled_sweep_seed_matches_per_circuit_loop(self, builder, parameters, samples):
        batched_estimator = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=400, seed=21), shots=400
        )
        batched = batched_estimator.fidelities(parameters, samples)
        loop_estimator = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=400, seed=21), shots=400
        )
        loop = np.array([loop_estimator.fidelity(parameters, row) for row in samples])
        np.testing.assert_array_equal(batched, loop)

    def test_noisy_sweep_seed_matches_per_circuit_loop(self, builder, parameters, samples):
        batched_estimator = SwapTestFidelityEstimator(
            builder, backend=ibmq_london(seed=5), shots=256
        )
        batched = batched_estimator.fidelities(parameters, samples[:3])
        loop_estimator = SwapTestFidelityEstimator(
            builder, backend=ibmq_london(seed=5), shots=256
        )
        loop = np.array([loop_estimator.fidelity(parameters, row) for row in samples[:3]])
        np.testing.assert_array_equal(batched, loop)
        # The whole-grid path transpiles ONE symbolic template for the sweep;
        # a second sweep reuses it from the cache.
        stats = batched_estimator.backend.transpile_cache_stats
        assert stats["misses"] == 1
        batched_estimator.fidelities(parameters, samples[:3])
        assert batched_estimator.backend.transpile_cache_stats["hits"] >= 1

    def test_fidelity_matrix_sampled_seed_matches_loop(self, builder, samples):
        rng = np.random.default_rng(22)
        matrix = rng.uniform(0, np.pi, size=(4, builder.num_parameters))
        batched_estimator = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=300, seed=33), shots=300
        )
        batched = batched_estimator.fidelity_matrix(matrix, samples)
        loop_estimator = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=300, seed=33), shots=300
        )
        loop = np.stack(
            [[loop_estimator.fidelity(row, s) for s in samples] for row in matrix]
        )
        np.testing.assert_array_equal(batched, loop)

    def test_chunked_batches_stay_equivalent(self, builder, parameters, samples):
        whole = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=200, seed=8), shots=200
        )
        chunked = SwapTestFidelityEstimator(
            builder,
            backend=SampledBackend(shots=200, seed=8),
            shots=200,
            max_batch_amplitudes=2 ** builder.layout.total_qubits * 2,  # 2 circuits/chunk
        )
        np.testing.assert_array_equal(
            whole.fidelities(parameters, samples), chunked.fidelities(parameters, samples)
        )

    def test_fidelity_matrix_counts_circuits(self, builder, samples):
        rng = np.random.default_rng(23)
        matrix = rng.uniform(0, np.pi, size=(3, builder.num_parameters))
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        estimator.fidelity_matrix(matrix, samples)
        assert estimator.circuits_executed == 3 * len(samples)

    def test_builder_circuit_cache_is_bounded(self, parameters):
        encoder = DualAngleEncoder()
        stack = LayerStack.from_architecture("s", encoder.num_qubits(4))
        bounded = DiscriminatorCircuitBuilder(stack, encoder, 4, data_circuit_cache_size=2)
        estimator = SwapTestFidelityEstimator(bounded, backend=IdealBackend(), shots=None)
        estimator.backend.supports_grid_programs = False  # exercise the stream path
        rng = np.random.default_rng(24)
        estimator.fidelities(parameters, rng.uniform(0.05, 0.95, size=(5, 4)))
        assert len(bounded._data_bound_cache) == 2

    def test_clear_cache_drops_memoised_circuits(self, builder, parameters, samples):
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        estimator.backend.supports_grid_programs = False  # exercise the stream path
        estimator.fidelities(parameters, samples)
        assert len(builder._data_bound_cache) > 0
        estimator.clear_cache()
        assert len(builder._data_bound_cache) == 0

    def test_cached_discriminator_reused_across_estimators(self, builder, parameters, samples):
        first = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        first.backend.supports_grid_programs = False  # exercise the stream path
        first.fidelities(parameters, samples)
        cached = len(builder._data_bound_cache)
        second = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        second.backend.supports_grid_programs = False
        second.fidelities(parameters, samples)
        assert len(builder._data_bound_cache) == cached

    def test_invalid_configuration_rejected(self, builder):
        with pytest.raises(ValidationError):
            SwapTestFidelityEstimator(builder, max_batch_amplitudes=0)
        encoder = DualAngleEncoder()
        stack = LayerStack.from_architecture("s", encoder.num_qubits(4))
        with pytest.raises(ValidationError):
            DiscriminatorCircuitBuilder(stack, encoder, 4, data_circuit_cache_size=0)

    def test_parameter_matrix_must_be_2d(self, builder, parameters, samples):
        estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        with pytest.raises(ValidationError):
            estimator.fidelity_matrix(parameters, samples)

    def test_trainer_selects_batched_path_for_simulator_backends(self):
        from repro.core.model import QuClassi
        from repro.core.trainer import Trainer

        model = QuClassi(
            num_features=4,
            num_classes=2,
            architecture="s",
            estimator="swap_test",
            backend=SampledBackend(shots=64, seed=0),
            shots=64,
            seed=0,
        )
        assert Trainer(model)._uses_batched_path() is True
