"""Tests for the QuClassi classifier."""

import numpy as np
import pytest

from repro.core import QuClassi
from repro.encoding import SingleAngleEncoder
from repro.exceptions import TrainingError, ValidationError


def tiny_binary_task(seed: int = 0, samples: int = 20):
    """A linearly separable 4-feature binary task for fast training tests."""
    rng = np.random.default_rng(seed)
    low = rng.uniform(0.05, 0.35, size=(samples, 4))
    high = rng.uniform(0.65, 0.95, size=(samples, 4))
    features = np.vstack([low, high])
    labels = np.array([0] * samples + [1] * samples)
    order = rng.permutation(len(labels))
    return features[order], labels[order]


class TestConstruction:
    def test_paper_iris_configuration(self):
        """Iris: 4 features, QC-S -> 5-qubit circuit, 4 parameters per class, 12 total."""
        model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=0)
        assert model.num_qubits == 5
        assert model.parameters_per_class == 4
        assert model.num_parameters == 12

    def test_paper_mnist_configuration(self):
        """16-D PCA MNIST, QC-S, binary -> 17 qubits and 32 total parameters (paper §5.3.1)."""
        model = QuClassi(num_features=16, num_classes=2, architecture="s", seed=0)
        assert model.num_qubits == 17
        assert model.num_parameters == 32

    def test_ten_class_parameter_count(self):
        """10-class, QC-S on 8 trained qubits -> 160 parameters (paper §5.3.2)."""
        model = QuClassi(num_features=16, num_classes=10, architecture="s", seed=0)
        assert model.num_parameters == 160

    def test_initial_parameters_in_zero_pi(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        assert model.parameters_.min() >= 0.0
        assert model.parameters_.max() <= np.pi

    def test_seed_reproducibility(self):
        a = QuClassi(num_features=4, num_classes=2, seed=7)
        b = QuClassi(num_features=4, num_classes=2, seed=7)
        np.testing.assert_array_equal(a.parameters_, b.parameters_)

    def test_custom_encoder(self):
        model = QuClassi(num_features=4, num_classes=2, encoder=SingleAngleEncoder(), seed=0)
        assert model.num_qubits == 9  # 4 + 4 + ancilla

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            QuClassi(num_features=4, num_classes=1)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValidationError):
            QuClassi(num_features=4, num_classes=2, estimator="magic")

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValidationError):
            QuClassi(num_features=4, num_classes=2, architecture="xyz")


class TestInference:
    def test_fidelity_matrix_shape_and_range(self):
        model = QuClassi(num_features=4, num_classes=3, seed=0)
        features = np.random.default_rng(0).uniform(0.1, 0.9, size=(5, 4))
        fidelities = model.class_fidelities(features)
        assert fidelities.shape == (5, 3)
        assert np.all((fidelities >= 0) & (fidelities <= 1))

    def test_probabilities_sum_to_one(self):
        model = QuClassi(num_features=4, num_classes=3, seed=0)
        features = np.random.default_rng(0).uniform(0.1, 0.9, size=(5, 4))
        np.testing.assert_allclose(model.predict_proba(features).sum(axis=1), np.ones(5))

    def test_predict_shape(self):
        model = QuClassi(num_features=4, num_classes=3, seed=0)
        features = np.random.default_rng(0).uniform(0.1, 0.9, size=(5, 4))
        assert model.predict(features).shape == (5,)

    def test_single_sample_accepted(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        assert model.class_fidelities(np.full(4, 0.5)).shape == (1, 2)

    def test_wrong_feature_count_rejected(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        with pytest.raises(ValidationError):
            model.predict(np.zeros((3, 5)))

    def test_trained_statevector_is_normalised(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        assert model.trained_statevector(0).norm() == pytest.approx(1.0)

    def test_trained_statevector_invalid_class(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        with pytest.raises(ValidationError):
            model.trained_statevector(5)

    def test_discriminator_circuit_is_bound(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        circuit = model.discriminator_circuit(1, np.full(4, 0.5))
        assert circuit.num_parameters == 0
        assert circuit.has_measurements()


class TestTraining:
    def test_learns_separable_task(self):
        features, labels = tiny_binary_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        history = model.fit(features, labels, epochs=8, learning_rate=0.1)
        assert history.losses[-1] < history.losses[0]
        assert model.score(features, labels) >= 0.9

    def test_loss_decreases_with_training(self):
        features, labels = tiny_binary_task(seed=1)
        model = QuClassi(num_features=4, num_classes=2, seed=1)
        history = model.fit(features, labels, epochs=6, learning_rate=0.1)
        assert history.losses[-1] < history.losses[0]

    def test_validation_accuracy_recorded(self):
        features, labels = tiny_binary_task(seed=2)
        model = QuClassi(num_features=4, num_classes=2, seed=2)
        history = model.fit(
            features, labels, epochs=3, learning_rate=0.1, validation_data=(features, labels)
        )
        assert all(acc is not None for acc in history.validation_accuracies)

    def test_stochastic_update_mode(self):
        features, labels = tiny_binary_task(seed=3, samples=8)
        model = QuClassi(num_features=4, num_classes=2, seed=3)
        history = model.fit(features, labels, epochs=2, learning_rate=0.05, update="stochastic")
        assert len(history.losses) == 2

    def test_wrong_label_range_rejected(self):
        features, labels = tiny_binary_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        with pytest.raises(TrainingError):
            model.fit(features, labels + 5, epochs=1)

    def test_wrong_feature_count_rejected(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        with pytest.raises(TrainingError):
            model.fit(np.zeros((4, 3)), np.array([0, 1, 0, 1]), epochs=1)

    def test_history_stored_on_model(self):
        features, labels = tiny_binary_task(samples=6)
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        model.fit(features, labels, epochs=2, learning_rate=0.1)
        assert model.history_ is not None
        assert len(model.history_.records) == 2


class TestWeights:
    def test_get_set_round_trip(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        weights = model.get_weights()
        weights[0, 0] = 9.0
        model.set_weights(weights)
        assert model.parameters_[0, 0] == 9.0

    def test_get_weights_returns_copy(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        weights = model.get_weights()
        weights[:] = 0.0
        assert not np.allclose(model.parameters_, 0.0)

    def test_set_weights_shape_checked(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        with pytest.raises(TrainingError):
            model.set_weights(np.zeros((3, 3)))
