"""Tests for the trainer and its configuration."""

import numpy as np
import pytest

from repro.core import QuClassi
from repro.core.callbacks import Callback
from repro.core.trainer import Trainer, TrainerConfig
from repro.exceptions import TrainingError


def separable_task(seed: int = 0, samples: int = 12):
    rng = np.random.default_rng(seed)
    low = rng.uniform(0.05, 0.3, size=(samples, 4))
    high = rng.uniform(0.7, 0.95, size=(samples, 4))
    features = np.vstack([low, high])
    labels = np.array([0] * samples + [1] * samples)
    return features, labels


class TestTrainerConfig:
    def test_defaults_follow_paper(self):
        config = TrainerConfig()
        assert config.learning_rate == pytest.approx(0.01)
        assert config.epochs == 25
        assert config.gradient_rule == "epoch_scaled"
        assert config.cost == "cross_entropy"

    def test_invalid_learning_rate(self):
        with pytest.raises(TrainingError):
            TrainerConfig(learning_rate=0.0)

    def test_invalid_epochs(self):
        with pytest.raises(TrainingError):
            TrainerConfig(epochs=0)

    def test_invalid_update_mode(self):
        with pytest.raises(TrainingError):
            TrainerConfig(update="minibatch")

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            TrainerConfig(batch_size=-1)


class TestTrainerFit:
    def test_history_length_matches_epochs(self):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        trainer = Trainer(model, TrainerConfig(epochs=3, learning_rate=0.1), rng=0)
        history = trainer.fit(features, labels)
        assert len(history.records) == 3
        assert history.epochs == [1, 2, 3]

    def test_per_class_losses_recorded(self):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        trainer = Trainer(model, TrainerConfig(epochs=2, learning_rate=0.1), rng=0)
        history = trainer.fit(features, labels)
        assert history.per_class_losses().shape == (2, 2)

    def test_gradient_norm_positive_while_learning(self):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        trainer = Trainer(model, TrainerConfig(epochs=1, learning_rate=0.1), rng=0)
        history = trainer.fit(features, labels)
        assert history.records[0].gradient_norm > 0

    def test_one_vs_rest_disabled_trains_on_own_class_only(self):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        config = TrainerConfig(epochs=2, learning_rate=0.1, one_vs_rest=False)
        history = Trainer(model, config, rng=0).fit(features, labels)
        assert len(history.records) == 2

    def test_parameters_change_during_training(self):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        before = model.get_weights()
        Trainer(model, TrainerConfig(epochs=1, learning_rate=0.1), rng=0).fit(features, labels)
        assert not np.allclose(before, model.parameters_)

    def test_label_validation(self):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        trainer = Trainer(model, TrainerConfig(epochs=1), rng=0)
        with pytest.raises(TrainingError):
            trainer.fit(features, labels * 3)

    def test_feature_validation(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        trainer = Trainer(model, TrainerConfig(epochs=1), rng=0)
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((3, 2)), np.array([0, 1, 0]))

    def test_labels_length_validation(self):
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        trainer = Trainer(model, TrainerConfig(epochs=1), rng=0)
        with pytest.raises(TrainingError):
            trainer.fit(np.full((3, 4), 0.5), np.array([0, 1]))

    def test_reproducible_given_seeds(self):
        features, labels = separable_task()
        runs = []
        for _ in range(2):
            model = QuClassi(num_features=4, num_classes=2, seed=5)
            Trainer(model, TrainerConfig(epochs=2, learning_rate=0.1), rng=11).fit(features, labels)
            runs.append(model.get_weights())
        np.testing.assert_allclose(runs[0], runs[1])

    def test_callback_hooks_invoked_and_early_stopping(self):
        class StopAfterOne(Callback):
            def __init__(self):
                self.begun = False
                self.epochs_seen = 0
                self.ended = False

            def on_train_begin(self, trainer):
                self.begun = True

            def on_epoch_end(self, trainer, record):
                self.epochs_seen += 1

            def on_train_end(self, trainer, history):
                self.ended = True

            def should_stop(self):
                return self.epochs_seen >= 1

        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, seed=0)
        callback = StopAfterOne()
        history = Trainer(
            model, TrainerConfig(epochs=10, learning_rate=0.1), callbacks=[callback], rng=0
        ).fit(features, labels)
        assert callback.begun and callback.ended
        assert len(history.records) == 1


class TestPerClassRngStreams:
    """Per-class training draws from spawned child streams, not a shared rng."""

    def test_class_streams_are_independent_of_training_order(self):
        """Exhausting one class's stream must not perturb another's.

        Under the old shared-``self.rng`` threading, every draw any class
        made shifted the stream every later class saw; with per-class
        ``SeedSequence.spawn`` children the streams are disjoint by
        construction.
        """
        from repro.utils.rng import spawn_rngs

        streams_a = spawn_rngs(11, 3)
        streams_b = spawn_rngs(11, 3)
        # Drain class 0's stream heavily in one run only.
        streams_a[0].permutation(1000)
        np.testing.assert_array_equal(
            streams_a[2].permutation(24), streams_b[2].permutation(24)
        )

    def test_shuffled_fit_reproducible_and_shuffle_matters(self):
        features, labels = separable_task()

        def run(shuffle):
            model = QuClassi(num_features=4, num_classes=2, seed=5)
            config = TrainerConfig(epochs=2, learning_rate=0.1, shuffle=shuffle, batch_size=4)
            Trainer(model, config, rng=11).fit(features, labels)
            return model.get_weights()

        np.testing.assert_array_equal(run(True), run(True))
        assert not np.array_equal(run(True), run(False))

    def test_fit_level_rng_controls_shuffles_not_initialisation(self):
        features, labels = separable_task()
        weights = []
        for fit_seed in (1, 2):
            model = QuClassi(num_features=4, num_classes=2, seed=5)
            config = TrainerConfig(epochs=2, learning_rate=0.1, batch_size=4)
            Trainer(model, config, rng=fit_seed).fit(features, labels)
            weights.append(model.get_weights())
        assert not np.array_equal(weights[0], weights[1])


class TestBatchedLoopEquivalence:
    """The batched gradient path must reproduce the loop path trajectory."""

    def _fit(self, force_loop: bool, **fit_kwargs):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, architecture="s", seed=3)
        if force_loop:
            model.estimator.supports_batch = False
        history = model.fit(
            features,
            labels,
            epochs=3,
            rng=np.random.default_rng(7),
            **fit_kwargs,
        )
        return model, history

    def test_analytic_estimator_uses_batched_path(self):
        model = QuClassi(num_features=4, num_classes=2, architecture="s", seed=0)
        trainer = Trainer(model)
        assert trainer._uses_batched_path() is True
        model.estimator.supports_batch = False
        assert trainer._uses_batched_path() is False

    def test_identical_parameter_trajectories(self):
        batched_model, batched_history = self._fit(force_loop=False)
        loop_model, loop_history = self._fit(force_loop=True)
        np.testing.assert_allclose(
            batched_model.parameters_, loop_model.parameters_, atol=1e-10
        )
        for batched_record, loop_record in zip(batched_history.records, loop_history.records):
            assert batched_record.loss == pytest.approx(loop_record.loss, abs=1e-10)
            assert batched_record.gradient_norm == pytest.approx(
                loop_record.gradient_norm, abs=1e-10
            )

    def test_identical_trajectories_stochastic_update(self):
        batched_model, _ = self._fit(force_loop=False, update="stochastic")
        loop_model, _ = self._fit(force_loop=True, update="stochastic")
        np.testing.assert_allclose(
            batched_model.parameters_, loop_model.parameters_, atol=1e-10
        )

    def test_identical_trajectories_negative_fidelity_cost(self):
        batched_model, _ = self._fit(force_loop=False, cost="negative_fidelity")
        loop_model, _ = self._fit(force_loop=True, cost="negative_fidelity")
        np.testing.assert_allclose(
            batched_model.parameters_, loop_model.parameters_, atol=1e-10
        )

    def test_batched_inference_matches_loop(self):
        features, labels = separable_task()
        model = QuClassi(num_features=4, num_classes=2, architecture="s", seed=3)
        batched = model.class_fidelities(features)
        model.estimator.supports_batch = False
        loop = model.class_fidelities(features)
        np.testing.assert_allclose(batched, loop, atol=1e-12)
