"""Tests for the QuClassi discriminator-circuit builder (paper Fig. 7)."""

import numpy as np
import pytest

from repro.core.circuit_builder import DiscriminatorCircuitBuilder, DiscriminatorLayout
from repro.core.layers import LayerStack
from repro.encoding import DualAngleEncoder, SingleAngleEncoder
from repro.exceptions import ValidationError
from repro.quantum.fidelity import fidelity_from_swap_test_probability
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.statevector import Statevector


def make_builder(num_features: int = 4, architecture: str = "s") -> DiscriminatorCircuitBuilder:
    encoder = DualAngleEncoder()
    stack = LayerStack.from_architecture(architecture, encoder.num_qubits(num_features))
    return DiscriminatorCircuitBuilder(stack, encoder, num_features)


class TestLayout:
    def test_paper_iris_layout(self):
        """4 features -> 2+2 state qubits + 1 ancilla = 5 qubits (paper Fig. 7)."""
        layout = make_builder(4).layout
        assert layout.total_qubits == 5
        assert layout.ancilla == 0
        assert layout.trained_qubits == (1, 2)
        assert layout.data_qubits == (3, 4)

    def test_paper_mnist_layout(self):
        """16 PCA features -> 17 qubits (paper Section 5.3.1)."""
        assert make_builder(16).layout.total_qubits == 17

    def test_mismatched_stack_and_encoder_rejected(self):
        encoder = DualAngleEncoder()
        stack = LayerStack.from_architecture("s", 3)  # wrong width for 4 features
        with pytest.raises(ValidationError):
            DiscriminatorCircuitBuilder(stack, encoder, 4)

    def test_single_angle_encoder_doubles_register(self):
        encoder = SingleAngleEncoder()
        stack = LayerStack.from_architecture("s", 4)
        builder = DiscriminatorCircuitBuilder(stack, encoder, 4)
        assert builder.layout.total_qubits == 9


class TestCircuitStructure:
    def test_full_circuit_op_counts(self):
        builder = make_builder(4)
        circuit = builder.build([0.2, 0.4, 0.6, 0.8], parameter_values=[0.1, 0.2, 0.3, 0.4])
        ops = circuit.count_ops()
        assert ops["h"] == 2
        assert ops["cswap"] == 2          # one per trained/data qubit pair
        assert ops["measure"] == 1
        assert ops["ry"] == 4             # 2 trained + 2 data
        assert ops["rz"] == 4

    def test_symbolic_circuit_exposes_trainable_parameters(self):
        builder = make_builder(4)
        circuit = builder.build([0.2, 0.4, 0.6, 0.8])
        assert circuit.num_parameters == builder.num_parameters == 4

    def test_parameter_binding_requires_full_vector(self):
        builder = make_builder(4)
        with pytest.raises(ValidationError):
            builder.parameter_binding([0.1, 0.2])

    def test_trained_and_data_registers_are_disjoint(self):
        builder = make_builder(6, architecture="sd")
        circuit = builder.build(np.linspace(0.1, 0.9, 6), parameter_values=np.zeros(builder.num_parameters))
        layout = builder.layout
        for inst in circuit.instructions:
            if inst.label == "trained":
                assert set(inst.qubits) <= set(layout.trained_qubits)
            if inst.label == "data":
                assert set(inst.qubits) <= set(layout.data_qubits)

    def test_rejects_invalid_feature_count(self):
        with pytest.raises(Exception):
            make_builder(4).build([0.2, 0.4])  # wrong dimensionality


class TestSwapTestSemantics:
    def test_ancilla_probability_matches_analytic_fidelity(self):
        """P(ancilla = 0) = (1 + F) / 2 where F is the trained/data state overlap."""
        builder = make_builder(4)
        parameters = np.array([0.7, 1.1, 0.3, 2.0])
        features = np.array([0.15, 0.65, 0.35, 0.85])

        circuit = builder.build(features, parameter_values=parameters)
        p_zero = StatevectorSimulator().run(circuit).marginal_probability(0, 0)

        trained = Statevector(2).evolve(builder.trained_state_circuit(parameters))
        data = Statevector(2).evolve(builder.data_state_circuit(features))
        expected = trained.fidelity(data)
        assert fidelity_from_swap_test_probability(p_zero) == pytest.approx(expected, abs=1e-9)

    def test_identical_trained_and_data_states_give_unit_fidelity(self):
        """When the learned state equals the encoded data point, P(0) = 1."""
        encoder = DualAngleEncoder()
        stack = LayerStack.from_architecture("s", 2)
        builder = DiscriminatorCircuitBuilder(stack, encoder, 4)
        features = np.array([0.3, 0.6, 0.7, 0.2])
        angles = encoder.angles(features)  # ry/rz angles interleaved per qubit
        circuit = builder.build(features, parameter_values=angles)
        p_zero = StatevectorSimulator().run(circuit).marginal_probability(0, 0)
        assert p_zero == pytest.approx(1.0, abs=1e-9)

    def test_deeper_architectures_still_satisfy_swap_identity(self):
        builder = make_builder(4, architecture="sde")
        rng = np.random.default_rng(0)
        parameters = rng.uniform(0, np.pi, builder.num_parameters)
        features = np.array([0.4, 0.1, 0.9, 0.5])
        circuit = builder.build(features, parameter_values=parameters)
        p_zero = StatevectorSimulator().run(circuit).marginal_probability(0, 0)
        trained = Statevector(2).evolve(builder.trained_state_circuit(parameters))
        data = Statevector(2).evolve(builder.data_state_circuit(features))
        assert 2 * p_zero - 1 == pytest.approx(trained.fidelity(data), abs=1e-9)
