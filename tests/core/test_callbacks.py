"""Tests for callbacks and training history."""

import pytest

from repro.core.callbacks import (
    EarlyStopping,
    EpochRecord,
    ProgressLogger,
    Timer,
    TrainingHistory,
)


def record(epoch: int, loss: float, accuracy: float = 0.5, validation=None) -> EpochRecord:
    return EpochRecord(
        epoch=epoch,
        loss=loss,
        per_class_loss=[loss, loss],
        train_accuracy=accuracy,
        validation_accuracy=validation,
        gradient_norm=0.1,
        elapsed_seconds=0.01,
    )


class TestTrainingHistory:
    def test_accessors(self):
        history = TrainingHistory()
        history.append(record(1, 0.9, 0.5, 0.4))
        history.append(record(2, 0.7, 0.6, 0.55))
        assert history.epochs == [1, 2]
        assert history.losses == [0.9, 0.7]
        assert history.train_accuracies == [0.5, 0.6]
        assert history.final_loss == 0.7
        assert history.best_validation_accuracy == 0.55

    def test_per_class_losses_shape(self):
        history = TrainingHistory()
        history.append(record(1, 0.9))
        assert history.per_class_losses().shape == (1, 2)

    def test_empty_history_final_loss_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().final_loss

    def test_best_validation_none_when_absent(self):
        history = TrainingHistory()
        history.append(record(1, 0.9))
        assert history.best_validation_accuracy is None

    def test_as_dict_keys(self):
        history = TrainingHistory()
        history.append(record(1, 0.9))
        assert set(history.as_dict()) == {"epoch", "loss", "train_accuracy", "validation_accuracy"}


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=2)
        stopper.on_epoch_end(None, record(1, 1.0))
        stopper.on_epoch_end(None, record(2, 1.0))
        stopper.on_epoch_end(None, record(3, 1.0))
        assert stopper.should_stop()

    def test_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        stopper.on_epoch_end(None, record(1, 1.0))
        stopper.on_epoch_end(None, record(2, 1.0))
        stopper.on_epoch_end(None, record(3, 0.5))
        stopper.on_epoch_end(None, record(4, 0.6))
        assert not stopper.should_stop()

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestProgressLogger:
    def test_prints_every_epoch(self, capsys):
        logger = ProgressLogger(every=1, prefix="[test] ")
        logger.on_epoch_end(None, record(1, 0.8, 0.7, 0.6))
        captured = capsys.readouterr().out
        assert "epoch" in captured
        assert "[test]" in captured
        assert "val_acc" in captured

    def test_respects_interval(self, capsys):
        logger = ProgressLogger(every=2)
        logger.on_epoch_end(None, record(1, 0.8))
        assert capsys.readouterr().out == ""
        logger.on_epoch_end(None, record(2, 0.8))
        assert "epoch" in capsys.readouterr().out

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ProgressLogger(every=0)


class TestTimer:
    def test_elapsed_increases(self):
        timer = Timer()
        first = timer.elapsed()
        second = timer.elapsed()
        assert second >= first >= 0.0

    def test_reset(self):
        timer = Timer()
        timer.reset()
        assert timer.elapsed() < 1.0
