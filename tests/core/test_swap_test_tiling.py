"""Tiled (parameter-row x data-sample) sweep execution of the estimators.

Covers the compile-once / execute-many refactor at the estimator level:
tiled-vs-untiled identity across the analytic, sampled, and noisy paths,
compile-cache behaviour on repeat sweeps, the two-axis amplitude budget, and
the 17-qubit MNIST memory smoke (``slow`` marker).
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.circuit_builder import DiscriminatorCircuitBuilder
from repro.core.layers import LayerStack
from repro.core.swap_test import AnalyticFidelityEstimator, SwapTestFidelityEstimator
from repro.encoding import DualAngleEncoder
from repro.exceptions import ValidationError
from repro.hardware import ibmq_london
from repro.parallel import EstimatorSpec
from repro.quantum.backend import IdealBackend, SampledBackend


def make_builder(num_features: int = 4, architecture: str = "s") -> DiscriminatorCircuitBuilder:
    encoder = DualAngleEncoder()
    stack = LayerStack.from_architecture(architecture, encoder.num_qubits(num_features))
    return DiscriminatorCircuitBuilder(stack, encoder, num_features)


@pytest.fixture()
def builder():
    return make_builder()


@pytest.fixture()
def parameter_matrix(builder):
    rng = np.random.default_rng(3)
    return rng.uniform(0, np.pi, size=(5, builder.num_parameters))


@pytest.fixture()
def samples():
    rng = np.random.default_rng(4)
    return rng.uniform(0.05, 0.95, size=(4, 4))


class TestTiledSwapTestIdentity:
    """Tiled-vs-untiled bit identity, seed for seed, on every engine."""

    def test_exact_tiled_matches_untiled_bitwise(self, builder, parameter_matrix, samples):
        untiled = SwapTestFidelityEstimator(builder, backend=IdealBackend(), shots=None)
        whole = untiled.fidelity_matrix(parameter_matrix, samples)
        for budget in (2**5, 2**7, 2**9):
            tiled = SwapTestFidelityEstimator(
                builder, backend=IdealBackend(), shots=None, max_batch_amplitudes=budget
            )
            np.testing.assert_array_equal(
                tiled.fidelity_matrix(parameter_matrix, samples), whole
            )

    def test_sampled_tiled_counts_seed_identical(self, builder, parameter_matrix, samples):
        whole = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=300, seed=17), shots=300
        ).fidelity_matrix(parameter_matrix, samples)
        for budget in (2**5, 2**8):
            tiled = SwapTestFidelityEstimator(
                builder,
                backend=SampledBackend(shots=300, seed=17),
                shots=300,
                max_batch_amplitudes=budget,
            ).fidelity_matrix(parameter_matrix, samples)
            np.testing.assert_array_equal(tiled, whole)

    def test_noisy_tiled_counts_seed_identical(self, builder, parameter_matrix, samples):
        rows = parameter_matrix[:3]
        whole = SwapTestFidelityEstimator(
            builder, backend=ibmq_london(seed=23), shots=128
        ).fidelity_matrix(rows, samples)
        tiled = SwapTestFidelityEstimator(
            builder,
            backend=ibmq_london(seed=23),
            shots=128,
            max_batch_amplitudes=2 ** (2 * builder.layout.total_qubits) * 3,
        ).fidelity_matrix(rows, samples)
        np.testing.assert_array_equal(tiled, whole)

    def test_tiled_matches_per_circuit_loop(self, builder, parameter_matrix, samples):
        """The tiled program path stays draw-for-draw equal to the loop."""
        tiled = SwapTestFidelityEstimator(
            builder,
            backend=SampledBackend(shots=200, seed=9),
            shots=200,
            max_batch_amplitudes=2**builder.layout.total_qubits * 2,
        ).fidelity_matrix(parameter_matrix, samples)
        loop_estimator = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=200, seed=9), shots=200
        )
        loop = np.stack(
            [
                [loop_estimator.fidelity(row, sample) for sample in samples]
                for row in parameter_matrix
            ]
        )
        np.testing.assert_array_equal(tiled, loop)


class TestAnalyticTiling:
    def test_tiled_matches_untiled(self, builder, parameter_matrix, samples):
        whole = AnalyticFidelityEstimator(builder).fidelity_matrix(
            parameter_matrix, samples
        )
        for budget in (8, 16, 24):
            tiled = AnalyticFidelityEstimator(
                builder, max_batch_amplitudes=budget
            ).fidelity_matrix(parameter_matrix, samples)
            # Tiled matmul blocks may differ from the one-shot matmul at the
            # last ULP (BLAS kernel selection); values are exact to fp noise.
            np.testing.assert_allclose(tiled, whole, atol=1e-12)

    def test_budget_counts_both_operand_axes(self, builder):
        """Many samples alone must push the sweep into tiled execution."""
        rng = np.random.default_rng(5)
        rows = rng.uniform(0, np.pi, size=(2, builder.num_parameters))
        many_samples = rng.uniform(0.05, 0.95, size=(64, 4))
        state = 2**builder.layout.state_width
        # Budget fits the two trained rows comfortably but not the 64 data
        # columns: (2 + 64) * state > budget > (2 + sample_tile) * state.
        estimator = AnalyticFidelityEstimator(
            builder, max_batch_amplitudes=16 * state
        )
        whole = AnalyticFidelityEstimator(builder).fidelity_matrix(rows, many_samples)
        np.testing.assert_allclose(
            estimator.fidelity_matrix(rows, many_samples), whole, atol=1e-12
        )

    def test_budget_validated(self, builder):
        with pytest.raises(ValidationError):
            AnalyticFidelityEstimator(builder, max_batch_amplitudes=0)

    def test_estimator_spec_round_trips_budget(self, builder):
        estimator = AnalyticFidelityEstimator(builder, max_batch_amplitudes=1234)
        spec = EstimatorSpec.from_estimator(estimator)
        rebuilt = spec.build(builder)
        assert rebuilt._max_batch_amplitudes == 1234


class TestCompileOnceCaches:
    def test_noisy_repeat_sweeps_reuse_one_template_program(self, builder, parameter_matrix, samples):
        estimator = SwapTestFidelityEstimator(
            builder, backend=ibmq_london(seed=3), shots=64
        )
        estimator.fidelity_matrix(parameter_matrix[:2], samples)
        cache = estimator.backend._transpile_cache
        assert len(cache) == 1
        entry = next(iter(cache._entries._entries.values()))
        program_first = entry.ensure_program()
        engine = estimator.backend._simulator._program_engine()
        assert engine.plans_compiled == 1
        estimator.fidelity_matrix(parameter_matrix[:2], samples)
        estimator.fidelity_matrix(parameter_matrix, samples)
        assert entry.ensure_program() is program_first
        assert engine.plans_compiled == 1  # no re-planning on repeat sweeps
        stats = estimator.backend.transpile_cache_stats
        assert stats["misses"] == 1
        # The whole-grid path resolves the symbolic template once per SWEEP
        # (three sweeps: one miss + two hits), not once per grid element.
        assert stats["hits"] == 2

    def test_statevector_simulator_program_cache_hits_on_repeat(self, builder, parameter_matrix, samples):
        backend = IdealBackend()
        estimator = SwapTestFidelityEstimator(builder, backend=backend, shots=None)
        estimator.fidelity_matrix(parameter_matrix, samples)
        first = backend._simulator.program_cache_stats
        assert first["misses"] == 1
        estimator.fidelity_matrix(parameter_matrix, samples)
        second = backend._simulator.program_cache_stats
        assert second["misses"] == 1
        assert second["hits"] > first["hits"]

    def test_ledger_records_every_sweep_element(self, builder, parameter_matrix, samples):
        backend = ibmq_london(seed=11)
        estimator = SwapTestFidelityEstimator(builder, backend=backend, shots=32)
        estimator.fidelity_matrix(parameter_matrix[:2], samples)
        assert backend.ledger.num_jobs == 2 * samples.shape[0]
        record = backend.ledger.records[0]
        assert record.shots == 32
        assert record.cx_count > 0


@pytest.mark.slow
class TestMnistSeventeenQubitSmoke:
    def test_tiled_sweep_stays_under_memory_budget(self):
        """17-qubit MNIST sweep under a budget the untiled path exceeds."""
        from repro.core.model import QuClassi
        from repro.datasets import generate_synthetic_mnist, prepare_task

        data = prepare_task(
            generate_synthetic_mnist(digits=(3, 6), samples_per_digit=16, rng=0),
            n_components=16,
            rng=0,
        )
        model = QuClassi(num_features=16, num_classes=2, architecture="s", seed=0)
        assert model.num_qubits == 17
        rng = np.random.default_rng(0)
        rows = rng.uniform(0, np.pi, size=(4, model.parameters_per_class))
        features = data.x_train[:16]
        budget = 2**20  # 1M amplitudes = 16 MiB of complex128 per tile
        untiled_bytes = rows.shape[0] * features.shape[0] * 2**17 * 16
        estimator = SwapTestFidelityEstimator(
            model.builder,
            backend=SampledBackend(shots=128, seed=0),
            shots=128,
            max_batch_amplitudes=budget,
        )
        tracemalloc.start()
        fidelities = estimator.fidelity_matrix(rows, features)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert fidelities.shape == (4, 16)
        assert np.all((fidelities >= 0.0) & (fidelities <= 1.0))
        # The tiled working set is a handful of tile-sized buffers (the
        # state stack plus einsum temporaries), far below the untiled
        # requirement that the budget is a fraction of.
        budget_bytes = budget * 16
        assert untiled_bytes >= 8 * budget_bytes
        assert peak < 6 * budget_bytes
        assert peak < untiled_bytes * 0.75
