"""Unit tests for shard planning: splits, seed streams, and spec round-trips."""

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.hardware import IBMQBackend, IonQBackend
from repro.parallel import BackendSpec, EstimatorSpec, Shard, ShardPlan
from repro.quantum.backend import IdealBackend, SampledBackend


class TestShardPlanConstruction:
    def test_from_items_assigns_contiguous_indices(self):
        plan = ShardPlan.from_items(["a", "b", "c"])
        assert [shard.index for shard in plan] == [0, 1, 2]
        assert [shard.payload for shard in plan] == ["a", "b", "c"]
        assert plan[1].key == ("shard", 1)

    def test_from_items_with_keys(self):
        plan = ShardPlan.from_items([10, 20], keys=[("class", 0), ("class", 1)])
        assert plan[0].key == ("class", 0)

    def test_scalar_keys_are_wrapped(self):
        plan = ShardPlan.from_items([10, 20], keys=["a", "b"])
        assert plan[0].key == ("a",)

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ShardPlan.from_items([1, 2], keys=[("only",)])

    def test_non_contiguous_indices_rejected(self):
        with pytest.raises(ValidationError):
            ShardPlan([Shard(index=1, key=("x",))])


class TestShardPlanSplitting:
    def test_chunks_are_contiguous_and_balanced(self):
        plan = ShardPlan.from_items(list(range(7)))
        chunks = plan.chunks(3)
        assert [len(chunk) for chunk in chunks] == [3, 2, 2]
        flattened = [shard.index for chunk in chunks for shard in chunk]
        assert flattened == list(range(7))

    def test_chunks_drop_empty_workers(self):
        plan = ShardPlan.from_items(list(range(3)))
        assert len(plan.chunks(5)) == 3

    def test_chunks_invalid_worker_count(self):
        with pytest.raises(ValidationError):
            ShardPlan.from_items([1]).chunks(0)

    def test_balanced_chunks_spread_heavy_shards(self):
        plan = ShardPlan.from_items(list(range(4)))
        # One huge cell (index 0) and three tiny ones: LPT must isolate the
        # huge one instead of stacking work next to it.
        chunks = plan.balanced_chunks(2, weights=[100.0, 1.0, 1.0, 1.0])
        loads = sorted(
            sum(100.0 if shard.index == 0 else 1.0 for shard in chunk)
            for chunk in chunks
        )
        assert loads == [3.0, 100.0]

    def test_balanced_chunks_preserve_order_within_chunk(self):
        plan = ShardPlan.from_items(list(range(6)))
        chunks = plan.balanced_chunks(2, weights=[5, 4, 3, 3, 4, 5])
        for chunk in chunks:
            indices = [shard.index for shard in chunk]
            assert indices == sorted(indices)

    def test_balanced_chunks_weight_count_mismatch(self):
        with pytest.raises(ValidationError):
            ShardPlan.from_items([1, 2]).balanced_chunks(2, weights=[1.0])

    def test_balanced_chunks_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            ShardPlan.from_items([1, 2]).balanced_chunks(2, weights=[1.0, -1.0])


class TestSeedSpawning:
    def test_streams_depend_only_on_shard_index(self):
        plan = ShardPlan.from_items(list(range(4)))
        first = [rng.random() for rng in plan.spawn_rngs(7)]
        second = [rng.random() for rng in plan.spawn_rngs(7)]
        assert first == second
        assert len(set(first)) == len(first)

    def test_different_roots_give_different_streams(self):
        plan = ShardPlan.from_items(list(range(2)))
        assert [r.random() for r in plan.spawn_rngs(0)] != [
            r.random() for r in plan.spawn_rngs(1)
        ]

    def test_seed_sequences_are_picklable(self):
        plan = ShardPlan.from_items(list(range(2)))
        sequences = plan.spawn_seed_sequences(3)
        restored = pickle.loads(pickle.dumps(sequences))
        assert [
            np.random.default_rng(child).random() for child in restored
        ] == [np.random.default_rng(child).random() for child in plan.spawn_seed_sequences(3)]


class TestBackendSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            BackendSpec(kind="mystery")

    @pytest.mark.parametrize(
        "backend, kind",
        [
            (IdealBackend(), "ideal"),
            (SampledBackend(shots=256), "sampled"),
            (IBMQBackend("ibmq_london"), "ibmq"),
            (IonQBackend(), "ionq"),
        ],
    )
    def test_round_trip_rebuilds_same_backend_type(self, backend, kind):
        spec = BackendSpec.from_backend(backend)
        assert spec.kind == kind
        rebuilt = spec.build()
        assert type(rebuilt) is type(backend)
        assert rebuilt.name == backend.name

    def test_round_trip_preserves_sampled_shots(self):
        spec = BackendSpec.from_backend(SampledBackend(shots=333))
        assert spec.build().shots == 333

    def test_round_trip_preserves_queue_latency_flag(self):
        backend = IBMQBackend("ibmq_rome", simulate_queue_latency=True)
        rebuilt = BackendSpec.from_backend(backend).build()
        assert rebuilt.simulate_queue_latency is True

    def test_specs_are_picklable(self):
        spec = BackendSpec.from_backend(IBMQBackend("ibmq_melbourne")).with_seed(
            np.random.default_rng(5)
        )
        restored = pickle.loads(pickle.dumps(spec))
        assert restored.device == "ibmq_melbourne"
        assert restored.build().name == "ibmq_melbourne"

    def test_with_seed_drives_shot_sampling(self):
        from repro.quantum.circuit import QuantumCircuit

        circuit = QuantumCircuit(1, num_clbits=1)
        circuit.h(0)
        circuit.measure(0, 0)
        counts_a = BackendSpec(kind="sampled", shots=64).with_seed(9).build().run(circuit).counts
        counts_b = BackendSpec(kind="sampled", shots=64).with_seed(9).build().run(circuit).counts
        assert counts_a == counts_b

    def test_unknown_backend_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(ValidationError):
            BackendSpec.from_backend(Mystery())


class TestEstimatorSpec:
    def _builder(self):
        from repro.core import QuClassi

        return QuClassi(num_features=4, num_classes=2, seed=0).builder

    def test_analytic_round_trip(self):
        from repro.core.swap_test import AnalyticFidelityEstimator

        builder = self._builder()
        spec = EstimatorSpec.from_estimator(AnalyticFidelityEstimator(builder))
        assert spec.kind == "analytic"
        assert spec.samples_shots is False
        assert isinstance(spec.build(builder), AnalyticFidelityEstimator)

    def test_swap_test_round_trip(self):
        from repro.core.swap_test import SwapTestFidelityEstimator

        builder = self._builder()
        estimator = SwapTestFidelityEstimator(
            builder, backend=SampledBackend(shots=128), shots=64
        )
        spec = EstimatorSpec.from_estimator(estimator)
        assert spec.kind == "swap_test" and spec.shots == 64
        rebuilt = spec.build(builder)
        assert isinstance(rebuilt, SwapTestFidelityEstimator)
        assert rebuilt.shots == 64
        assert isinstance(rebuilt.backend, SampledBackend)

    def test_round_trip_preserves_tuning(self):
        """Memory guards and a pinned supports_batch override must travel."""
        from repro.core.swap_test import (
            AnalyticFidelityEstimator,
            SwapTestFidelityEstimator,
        )

        builder = self._builder()
        estimator = SwapTestFidelityEstimator(
            builder,
            backend=SampledBackend(shots=64),
            shots=32,
            max_batch_amplitudes=2**18,
        )
        estimator.supports_batch = False
        rebuilt = EstimatorSpec.from_estimator(estimator).build(builder)
        assert rebuilt._max_batch_amplitudes == 2**18
        assert rebuilt.supports_batch is False

        analytic = AnalyticFidelityEstimator(
            builder, data_cache_size=17, data_matrix_cache_size=3
        )
        analytic.supports_batch = False
        rebuilt = EstimatorSpec.from_estimator(analytic).build(builder)
        assert rebuilt._data_state_cache.max_entries == 17
        assert rebuilt._data_matrix_cache.max_entries == 3
        assert rebuilt.supports_batch is False

    def test_unknown_estimator_rejected(self):
        class Mystery:
            pass

        with pytest.raises(ValidationError):
            EstimatorSpec.from_estimator(Mystery())

    def test_with_backend_seed_no_backend_is_noop(self):
        spec = EstimatorSpec(kind="analytic")
        assert spec.with_backend_seed(3) is spec
