"""Sharded execution must be bit-identical to the serial path.

The whole point of ``repro.parallel`` is distributing the per-class training
and figure sweeps *without changing the science*: same losses, same
parameters, same sampled counts, same job ledgers — for every executor
strategy.  These tests pin that guarantee on the Iris workloads
(``QuClassi.fit`` per-class sharding and a fig6b-sized sweep), plus the
trainer-level order-independence it rests on.

Thread-strategy equivalence runs in the default suite; the process-pool
variants live behind the ``slow`` marker per the repo's marker policy.
"""

import numpy as np
import pytest

from repro.core import QuClassi
from repro.core.trainer import Trainer, TrainerConfig, _run_class_shard
from repro.datasets import load_iris, prepare_task
from repro.experiments import fig6b_iris_accuracy
from repro.hardware import IBMQBackend
from repro.parallel import EstimatorSpec, ShardExecutor, ShardPlan
from repro.quantum.backend import SampledBackend
from repro.utils.rng import spawn_rngs


@pytest.fixture(scope="module")
def iris():
    return prepare_task(load_iris(), samples_per_class=8, test_fraction=0.25, rng=0)


def _fit_analytic(iris, executor):
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=3)
    model.fit(
        iris.x_train, iris.y_train, epochs=3, learning_rate=0.1, rng=7,
        validation_data=(iris.x_test, iris.y_test), executor=executor,
    )
    return model


def _fit_sampled(iris, executor, backend_factory):
    model = QuClassi(
        num_features=4, num_classes=3, architecture="s", seed=3,
        estimator="swap_test", backend=backend_factory(), shots=128,
    )
    model.fit(
        iris.x_train, iris.y_train, epochs=2, learning_rate=0.1, rng=7,
        batch_size=None, executor=executor,
    )
    return model


def _assert_same_run(reference, other):
    np.testing.assert_array_equal(reference.parameters_, other.parameters_)
    assert reference.history_.losses == other.history_.losses
    assert (
        reference.history_.per_class_losses().tolist()
        == other.history_.per_class_losses().tolist()
    )
    assert (
        reference.history_.train_accuracies == other.history_.train_accuracies
    )


class TestFitEquivalenceAnalytic:
    def test_plain_serial_equals_serial_executor(self, iris):
        _assert_same_run(
            _fit_analytic(iris, None), _fit_analytic(iris, ShardExecutor("serial"))
        )

    def test_thread_equals_serial(self, iris):
        _assert_same_run(
            _fit_analytic(iris, None),
            _fit_analytic(iris, ShardExecutor("thread", max_workers=2)),
        )

    def test_strategy_string_is_accepted(self, iris):
        _assert_same_run(_fit_analytic(iris, None), _fit_analytic(iris, "thread"))

    @pytest.mark.slow
    def test_process_equals_serial(self, iris):
        _assert_same_run(
            _fit_analytic(iris, None),
            _fit_analytic(iris, ShardExecutor("process", max_workers=2)),
        )


class TestFitEquivalenceSampled:
    """Shot-sampled training: identical counts, losses, and ledgers."""

    def test_thread_equals_serial_executor_on_sampled_backend(self, iris):
        serial = _fit_sampled(iris, ShardExecutor("serial"), lambda: SampledBackend(shots=128, seed=11))
        threaded = _fit_sampled(
            iris, ShardExecutor("thread", max_workers=3), lambda: SampledBackend(shots=128, seed=11)
        )
        _assert_same_run(serial, threaded)

    def test_thread_equals_serial_executor_on_noisy_backend(self, iris):
        serial = _fit_sampled(iris, ShardExecutor("serial"), lambda: IBMQBackend("ibmq_london", seed=11))
        threaded = _fit_sampled(
            iris, ShardExecutor("thread", max_workers=3), lambda: IBMQBackend("ibmq_london", seed=11)
        )
        _assert_same_run(serial, threaded)

    @pytest.mark.slow
    def test_process_equals_serial_executor_on_sampled_backend(self, iris):
        serial = _fit_sampled(iris, ShardExecutor("serial"), lambda: SampledBackend(shots=128, seed=11))
        forked = _fit_sampled(
            iris, ShardExecutor("process", max_workers=2), lambda: SampledBackend(shots=128, seed=11)
        )
        _assert_same_run(serial, forked)


class TestLedgerMergeDeterminism:
    """Regression: concurrent shards must ledger the same job sequence as serial."""

    def _ledger_signature(self, model):
        return [
            (record.job_id, record.circuit_name, record.shots, record.cx_count, record.depth)
            for record in model.estimator.backend.ledger.records
        ]

    def test_two_worker_run_ledgers_same_sequence_as_serial(self, iris):
        serial = _fit_sampled(iris, ShardExecutor("serial"), lambda: IBMQBackend("ibmq_london", seed=11))
        threaded = _fit_sampled(
            iris, ShardExecutor("thread", max_workers=2), lambda: IBMQBackend("ibmq_london", seed=11)
        )
        serial_jobs = self._ledger_signature(serial)
        assert serial_jobs, "training should have ledgered jobs"
        assert serial_jobs == self._ledger_signature(threaded)

    def test_job_ids_are_contiguous_after_merge(self, iris):
        model = _fit_sampled(
            iris, ShardExecutor("thread", max_workers=3), lambda: IBMQBackend("ibmq_london", seed=11)
        )
        job_ids = [record.job_id for record in model.estimator.backend.ledger.records]
        assert job_ids == list(range(len(job_ids)))


class TestTrainerOrderIndependence:
    """The bugfix under the tentpole: per-class streams, not one shared rng."""

    def test_single_class_shard_reproduces_full_run_trajectory(self, iris):
        """Training class c alone matches class c inside the full serial fit.

        With the old shared-generator threading this could not hold: class
        1's shuffles depended on class 0 having drawn first.
        """
        model = _fit_analytic(iris, None)

        reference = QuClassi(num_features=4, num_classes=3, architecture="s", seed=3)
        config = TrainerConfig(epochs=3, learning_rate=0.1)
        trainer = Trainer(reference, config=config, rng=7)
        class_rngs = spawn_rngs(trainer.rng, reference.num_classes)

        for class_index in [2, 0, 1]:  # deliberately out of order
            from repro.core.trainer import _ClassShardTask

            task = _ClassShardTask(
                class_index=class_index,
                config=config,
                gradient_rule=trainer.gradient_rule,
                cost_function=trainer.cost_function,
                builder=reference.builder,
                estimator_spec=EstimatorSpec.from_estimator(reference.estimator),
                initial_parameters=reference.parameters_[class_index],
                features=np.asarray(iris.x_train, dtype=float),
                targets=(np.asarray(iris.y_train) == class_index).astype(float),
                rng=class_rngs[class_index],
            )
            shard = ShardPlan.from_items([task])[0]
            result = _run_class_shard(shard)
            np.testing.assert_array_equal(
                result.parameter_snapshots[-1], model.parameters_[class_index]
            )

    def test_rerun_with_same_seed_is_identical(self, iris):
        _assert_same_run(_fit_analytic(iris, None), _fit_analytic(iris, None))


class TestSweepEquivalence:
    """fig6b-sized sweep through run_cells: serial vs thread (vs process: slow)."""

    def _sweep(self, executor):
        return fig6b_iris_accuracy(
            architectures=("s", "sd"), dnn_budgets=(56,), epochs=2, executor=executor
        )

    def test_thread_sweep_matches_serial(self):
        assert self._sweep(None).rows == self._sweep(ShardExecutor("thread", max_workers=3)).rows

    @pytest.mark.slow
    def test_process_sweep_matches_serial(self):
        assert (
            self._sweep(None).rows
            == self._sweep(ShardExecutor("process", max_workers=2)).rows
        )


class TestShardedModeBehaviour:
    def test_callbacks_fire_and_early_stop_truncates(self, iris):
        from repro.core.callbacks import Callback

        class StopAfterOne(Callback):
            def __init__(self):
                self.epochs_seen = 0

            def on_epoch_end(self, trainer, record):
                self.epochs_seen += 1

            def should_stop(self):
                return self.epochs_seen >= 1

        model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=3)
        callback = StopAfterOne()
        trainer = Trainer(
            model, TrainerConfig(epochs=4, learning_rate=0.1), callbacks=[callback], rng=7
        )
        history = trainer.fit(
            iris.x_train, iris.y_train, executor=ShardExecutor("thread", max_workers=2)
        )
        assert len(history.records) == 1
        # Parameters must match the epoch-1 snapshot of an uninterrupted run.
        reference = QuClassi(num_features=4, num_classes=3, architecture="s", seed=3)
        Trainer(reference, TrainerConfig(epochs=1, learning_rate=0.1), rng=7).fit(
            iris.x_train, iris.y_train
        )
        np.testing.assert_array_equal(model.parameters_, reference.parameters_)

    def test_circuits_executed_accounting_is_merged(self, iris):
        serial = _fit_sampled(iris, ShardExecutor("serial"), lambda: SampledBackend(shots=64, seed=1))
        threaded = _fit_sampled(
            iris, ShardExecutor("thread", max_workers=3), lambda: SampledBackend(shots=64, seed=1)
        )
        assert serial.estimator.circuits_executed == threaded.estimator.circuits_executed
        assert serial.estimator.circuits_executed > 0
