"""Unit tests for the shard executor strategies and their failure semantics."""

import os
import threading
import time

import pytest

from repro.exceptions import ValidationError
from repro.parallel import ShardError, ShardExecutor, ShardPlan


def _double(shard):
    return shard.payload * 2


def _fail_on_two(shard):
    if shard.payload == 2:
        raise RuntimeError("cell exploded")
    return shard.payload


def _kill_worker_process(shard):  # pragma: no cover - dies before returning
    os._exit(13)


class TestShardErrorPickling:
    def test_round_trip_keeps_shard_attribution(self):
        import pickle

        error = pickle.loads(pickle.dumps(ShardError("boom", 1, ("class", 1))))
        assert error.shard_index == 1
        assert error.shard_key == ("class", 1)
        assert "boom" in str(error)


class TestConstruction:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            ShardExecutor("fleet")

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValidationError):
            ShardExecutor("thread", max_workers=0)


class TestMapSemantics:
    @pytest.mark.parametrize("strategy", ["serial", "thread"])
    def test_results_in_shard_order(self, strategy):
        plan = ShardPlan.from_items(list(range(8)))
        results = ShardExecutor(strategy, max_workers=3).map(_double, plan)
        assert results == [i * 2 for i in range(8)]

    def test_empty_plan(self):
        assert ShardExecutor("thread").map(_double, ShardPlan.from_items([])) == []

    def test_accepts_plain_shard_sequences(self):
        plan = ShardPlan.from_items([5])
        assert ShardExecutor("serial").map(_double, list(plan)) == [10]

    def test_thread_order_independent_of_completion_order(self):
        plan = ShardPlan.from_items([0.03, 0.0, 0.01])

        def sleepy(shard):
            time.sleep(shard.payload)
            return shard.payload

        results = ShardExecutor("thread", max_workers=3).map(sleepy, plan)
        assert results == [0.03, 0.0, 0.01]

    def test_thread_actually_overlaps_workers(self):
        plan = ShardPlan.from_items([0.1] * 4)
        seen = set()

        def record_thread(shard):
            seen.add(threading.get_ident())
            time.sleep(shard.payload)
            return shard.index

        start = time.perf_counter()
        ShardExecutor("thread", max_workers=4).map(record_thread, plan)
        elapsed = time.perf_counter() - start
        assert len(seen) > 1
        assert elapsed < 0.35  # 4 x 0.1s serially; overlapped well under that


class TestFailureSemantics:
    @pytest.mark.parametrize("strategy", ["serial", "thread"])
    def test_failure_attributes_shard_and_chains_cause(self, strategy):
        plan = ShardPlan.from_items([1, 2, 3], keys=[("cell", i) for i in (1, 2, 3)])
        with pytest.raises(ShardError) as excinfo:
            ShardExecutor(strategy, max_workers=2).map(_fail_on_two, plan)
        assert excinfo.value.shard_index == 1
        assert excinfo.value.shard_key == ("cell", 2)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_thread_failure_cancels_pending_shards(self):
        plan = ShardPlan.from_items(list(range(64)))
        executed = []

        def fail_fast(shard):
            if shard.index == 0:
                raise RuntimeError("boom")
            time.sleep(0.005)
            executed.append(shard.index)
            return shard.index

        with pytest.raises(ShardError):
            ShardExecutor("thread", max_workers=2).map(fail_fast, plan)
        # Fail-fast: the queue of 64 shards must not have drained fully.
        assert len(executed) < 64


@pytest.mark.slow
class TestProcessStrategy:
    """Process-pool executions (opt-in via ``pytest -m slow``)."""

    def test_results_in_shard_order(self):
        plan = ShardPlan.from_items(list(range(5)))
        results = ShardExecutor("process", max_workers=2).map(_double, plan)
        assert results == [i * 2 for i in range(5)]

    def test_worker_exception_is_attributed(self):
        plan = ShardPlan.from_items([1, 2], keys=["ok", "bad"])
        with pytest.raises(ShardError) as excinfo:
            ShardExecutor("process", max_workers=2).map(_fail_on_two, plan)
        assert excinfo.value.shard_key == ("bad",)

    def test_dead_worker_fails_fast_instead_of_hanging(self):
        plan = ShardPlan.from_items([0, 1, 2])
        start = time.perf_counter()
        with pytest.raises(ShardError) as excinfo:
            ShardExecutor("process", max_workers=2).map(_kill_worker_process, plan)
        assert time.perf_counter() - start < 30.0
        assert "died" in str(excinfo.value) or "pool" in str(excinfo.value)
