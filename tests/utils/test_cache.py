"""Tests for the shared bounded LRU cache."""

import pytest

from repro.utils.cache import LRUCache


class TestLRUCache:
    def test_miss_returns_none(self):
        assert LRUCache(2).get("absent") is None

    def test_put_and_get_round_trip(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh a by overwrite
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_size_bound_enforced(self):
        cache = LRUCache(3)
        for index in range(10):
            cache.put(index, index + 1)
        assert len(cache) == 3
        assert cache.max_entries == 3

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_none_values_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(2).put("a", None)
