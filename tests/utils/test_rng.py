"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    ensure_rng,
    sample_without_replacement,
    seeds_from,
    shuffled_indices,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert children[0].random() != children[1].random()

    def test_reproducible_from_seed(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSeedsFrom:
    def test_count_and_range(self):
        seeds = seeds_from(3, 10)
        assert len(seeds) == 10
        assert all(0 <= s < 2**31 for s in seeds)

    def test_reproducible(self):
        assert seeds_from(5, 4) == seeds_from(5, 4)


class TestShuffledIndices:
    def test_is_permutation(self):
        indices = shuffled_indices(10, rng=0)
        assert sorted(indices.tolist()) == list(range(10))

    def test_seeded_reproducibility(self):
        np.testing.assert_array_equal(shuffled_indices(8, rng=1), shuffled_indices(8, rng=1))


class TestSampleWithoutReplacement:
    def test_distinct(self):
        sample = sample_without_replacement(range(20), 5, rng=0)
        assert len(set(sample.tolist())) == 5

    def test_too_many_raises(self):
        with pytest.raises(ValueError):
            sample_without_replacement(range(3), 5, rng=0)


class TestSpawnRngsSeedSequenceUnification:
    """Regression: Generator seeds must spawn from the generator's SeedSequence."""

    def test_generator_seed_matches_int_seed(self):
        from_int = [g.random() for g in spawn_rngs(123, 3)]
        from_generator = [g.random() for g in spawn_rngs(np.random.default_rng(123), 3)]
        assert from_int == from_generator

    def test_generator_children_are_independent(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert children[0].random() != children[1].random()

    def test_repeated_spawns_from_same_generator_differ(self):
        root = np.random.default_rng(9)
        first = [g.random() for g in spawn_rngs(root, 2)]
        second = [g.random() for g in spawn_rngs(root, 2)]
        assert first != second
