"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_non_negative_int,
    check_positive_int,
    check_probability_vector,
    check_qubit_indices,
    check_square_matrix,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "n") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-1, "n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "n")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "n") == 4


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(-2, "n")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_below_minimum(self):
        with pytest.raises(ValidationError):
            check_in_range(-0.5, "x", minimum=0.0)

    def test_above_maximum(self):
        with pytest.raises(ValidationError):
            check_in_range(1.5, "x", maximum=1.0)


class TestCheckArray:
    def test_converts_lists(self):
        array = check_array([[1, 2], [3, 4]], "m", ndim=2)
        assert array.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError):
            check_array([1, 2, 3], "m", ndim=2)

    def test_shape_wildcards(self):
        check_array(np.zeros((5, 3)), "m", shape=(None, 3))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValidationError):
            check_array(np.zeros((5, 3)), "m", shape=(None, 4))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_array(np.array([1.0, np.nan]), "m")


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        check_square_matrix(np.eye(3), "m")

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.zeros((2, 3)), "m")


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        check_probability_vector([0.25, 0.75], "p")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability_vector([-0.1, 1.1], "p")

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.4, 0.4], "p")


class TestCheckQubitIndices:
    def test_accepts_distinct_in_range(self):
        assert check_qubit_indices((0, 2, 1), 3) == (0, 2, 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_qubit_indices((0, 3), 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            check_qubit_indices((1, 1), 3)
