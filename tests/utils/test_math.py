"""Tests for repro.utils.math."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.math import (
    binary_cross_entropy,
    clip_probability,
    cross_entropy,
    kl_divergence,
    normalize_probabilities,
    one_hot,
    relu,
    sigmoid,
    softmax,
)


class TestSigmoid:
    def test_at_zero(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_symmetry(self):
        assert sigmoid(2.0) + sigmoid(-2.0) == pytest.approx(1.0)

    def test_large_positive_does_not_overflow(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)

    def test_large_negative_does_not_overflow(self):
        assert sigmoid(-1000.0) == pytest.approx(0.0)

    def test_vectorised(self):
        values = sigmoid(np.array([-1.0, 0.0, 1.0]))
        assert values.shape == (3,)
        assert np.all(np.diff(values) > 0)


class TestRelu:
    def test_negative_clipped(self):
        assert relu(-3.0) == 0.0

    def test_positive_passthrough(self):
        assert relu(2.5) == 2.5

    def test_array(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)

    def test_invariant_to_shift(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)

    def test_handles_large_values(self):
        probs = softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_2d_rows_normalised(self):
        probs = softmax(np.array([[1.0, 2.0], [5.0, 1.0]]), axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])

    def test_monotone_in_input(self):
        probs = softmax(np.array([0.1, 0.5, 0.9]))
        assert probs[2] > probs[1] > probs[0]


class TestOneHot:
    def test_basic(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_infers_num_classes(self):
        assert one_hot(np.array([0, 1, 3])).shape == (3, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([0, 5]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([[0], [1]]), 2)


class TestCrossEntropies:
    def test_binary_perfect_prediction_is_small(self):
        assert binary_cross_entropy(np.array([1.0, 0.0]), np.array([1.0, 0.0])) < 1e-6

    def test_binary_wrong_prediction_is_large(self):
        assert binary_cross_entropy(np.array([1.0]), np.array([0.0])) > 10.0

    def test_binary_matches_formula(self):
        value = binary_cross_entropy(np.array([1.0]), np.array([0.25]))
        assert value == pytest.approx(-np.log(0.25))

    def test_categorical_matches_binary_for_two_classes(self):
        y = np.array([[1.0, 0.0], [0.0, 1.0]])
        p = np.array([[0.7, 0.3], [0.2, 0.8]])
        expected = np.mean([-np.log(0.7), -np.log(0.8)])
        assert cross_entropy(y, p) == pytest.approx(expected)

    def test_categorical_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            cross_entropy(np.ones((2, 3)), np.ones((3, 2)))


class TestKLDivergence:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self):
        assert kl_divergence(np.array([0.9, 0.1]), np.array([0.5, 0.5])) > 0


class TestNormalizeProbabilities:
    def test_normalises(self):
        np.testing.assert_allclose(normalize_probabilities(np.array([1.0, 3.0])), [0.25, 0.75])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            normalize_probabilities(np.array([-1.0, 2.0]))

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            normalize_probabilities(np.zeros(3))


class TestClipProbability:
    def test_clips_extremes(self):
        clipped = clip_probability(np.array([0.0, 1.0]))
        assert clipped[0] > 0.0
        assert clipped[1] < 1.0

    def test_leaves_interior_unchanged(self):
        assert clip_probability(0.5) == 0.5
