"""Tests for the shared diagnostic record (:mod:`repro.analysis.diagnostics`)."""

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    errors,
    format_diagnostics,
    has_errors,
    sort_diagnostics,
)


def diag(code="VER101", severity=Severity.ERROR, file=None, line=None, obj=None):
    return Diagnostic(
        code=code,
        severity=severity,
        location=Location(file=file, line=line, obj=obj),
        message=f"message for {code}",
        hint=None,
    )


class TestLocation:
    def test_file_line_column_render(self):
        loc = Location(file="src/x.py", line=12, column=3)
        assert loc.render() == "src/x.py:12:3"

    def test_object_render(self):
        loc = Location(obj="program 'sweep'")
        assert loc.render() == "program 'sweep'"

    def test_empty_render_is_stable(self):
        assert isinstance(Location().render(), str)


class TestDiagnostic:
    def test_format_contains_code_severity_message(self):
        d = Diagnostic(
            code="VER140",
            severity=Severity.ERROR,
            location=Location(obj="tile plan 2x3"),
            message="tiles cover 5 element(s) of a 6-element grid",
            hint="every (row, sample) pair must be executed exactly once",
        )
        text = d.format()
        assert "VER140" in text
        assert "error" in text
        assert "tiles cover 5 element(s)" in text
        assert "hint" in text

    def test_to_dict_round_trip_keys(self):
        d = diag(file="src/x.py", line=4)
        payload = d.to_dict()
        assert payload["code"] == "VER101"
        assert payload["severity"] == "error"
        assert payload["file"] == "src/x.py"
        assert payload["line"] == 4
        assert payload["message"]


class TestHelpers:
    def test_errors_filters_severity(self):
        items = [diag(), diag(severity=Severity.WARNING), diag(severity=Severity.INFO)]
        assert len(errors(items)) == 1
        assert has_errors(items)
        assert not has_errors(items[1:])

    def test_sort_orders_by_location_then_code(self):
        a = diag(code="VER110", file="b.py", line=2)
        b = diag(code="VER101", file="a.py", line=9)
        c = diag(code="VER102", file="a.py", line=1)
        ordered = sort_diagnostics([a, b, c])
        assert [d.code for d in ordered] == ["VER102", "VER101", "VER110"]

    def test_format_diagnostics_one_line_each(self):
        items = [diag(), diag(code="VER103", severity=Severity.WARNING)]
        text = format_diagnostics(items)
        assert len(text.splitlines()) == 2
