"""Tests for the translation-validation family (:mod:`repro.analysis.equiv`).

Exercises the fusion legality oracle, the per-rewrite certificates
(VER401/VER402/VER403), the end-to-end translation witness
(VER410/VER411), and the sabotage corpus: every deliberately broken
rewrite must fire its *exact* code, and sound rewrites (including
global-phase-rotated ones) must stay clean.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.cli import _split_select
from repro.analysis.diagnostics import Severity
from repro.analysis.equiv import (
    EQUIV_CODES,
    can_extend_fusion,
    lift_superoperator_kron,
    lift_unitary_kron,
    qubit_permutation_matrix,
    shared_prefix_length,
    verify_fused_step,
    verify_fused_superoperator_plan,
    verify_shared_prefix,
    verify_translation,
)
from repro.hardware.calibration import get_calibration
from repro.quantum import gates
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.program import (
    DensitySuperoperatorEngine,
    GateStep,
    SweepProgram,
    gate_noise_superoperator,
)


def fixed(name, qubits, matrix):
    return GateStep(name=name, qubits=tuple(qubits), slots=(), matrix=matrix)


def parametric(name="ry", qubits=(0,), column=0):
    return GateStep(
        name=name, qubits=tuple(qubits), slots=(("column", column, 1.0),), matrix=None
    )


H0 = fixed("h", (0,), gates.HADAMARD)
H1 = fixed("h", (1,), gates.HADAMARD)
T0 = fixed("t", (0,), gates.T_GATE)
T1 = fixed("t", (1,), gates.T_GATE)
X2 = fixed("x", (2,), gates.PAULI_X)
CX01 = fixed("cx", (0, 1), gates.CNOT)
CX12 = fixed("cx", (1, 2), gates.CNOT)


@pytest.fixture(scope="module")
def london():
    return get_calibration("ibmq_london").noise_model()


def fuse(*steps):
    """A correctly fused step (kron-side lift, independent of the pass)."""
    union = tuple(sorted({q for step in steps for q in step.qubits}))
    matrix = None
    for step in steps:
        lifted = lift_unitary_kron(step.matrix, step.qubits, union)
        matrix = lifted if matrix is None else lifted @ matrix
    return GateStep(
        name="fused(" + "+".join(s.name for s in steps) + ")",
        qubits=union,
        slots=(),
        matrix=matrix,
        fused_from=tuple(steps),
    )


class TestPermutationLift:
    def test_permutation_is_orthogonal_and_reorders_bits(self):
        perm = qubit_permutation_matrix([1, 0], [0, 1])
        np.testing.assert_allclose(perm @ perm.T, np.eye(4))
        # |q1=1, q0=0> in (1, 0) order is index 2; in (0, 1) order index 1.
        assert perm[1, 2] == 1.0

    def test_permutation_rejects_mismatched_endpoints(self):
        with pytest.raises(ValueError):
            qubit_permutation_matrix([0, 1], [0, 2])

    def test_lift_unitary_matches_plain_kron_on_leading_qubit(self):
        lifted = lift_unitary_kron(gates.HADAMARD, (0,), (0, 1))
        np.testing.assert_allclose(lifted, np.kron(gates.HADAMARD, np.eye(2)))

    def test_lift_unitary_trailing_qubit(self):
        lifted = lift_unitary_kron(gates.T_GATE, (1,), (0, 1))
        np.testing.assert_allclose(lifted, np.kron(np.eye(2), gates.T_GATE))

    def test_lift_superoperator_identity_channel(self, london):
        channel = gate_noise_superoperator("cx", (0, 1), london)
        lifted = lift_superoperator_kron(channel, (0, 1), (0, 1))
        np.testing.assert_allclose(lifted, channel)


class TestLegalityOracle:
    def test_empty_run_admits_any_fixed_step(self):
        ok, reason = can_extend_fusion([], H0)
        assert ok and reason == ""

    def test_parametric_step_blocks(self):
        ok, reason = can_extend_fusion([H0], parametric())
        assert not ok
        assert "parametric" in reason

    def test_already_fused_step_blocks(self):
        ok, reason = can_extend_fusion([], fuse(H0, T0))
        assert not ok
        assert "provenance" in reason

    def test_disjoint_qubits_block(self):
        ok, reason = can_extend_fusion([H0], X2)
        assert not ok
        assert "overlap" in reason

    def test_width_cap_blocks(self):
        ok, reason = can_extend_fusion([CX01], CX12)
        assert not ok
        assert "max_fused_qubits" in reason
        ok, _ = can_extend_fusion([CX01], CX12, max_fused_qubits=3)
        assert ok

    def test_ideal_overlapping_fixed_steps_fuse(self):
        ok, _ = can_extend_fusion([H0], CX01)
        assert ok
        ok, _ = can_extend_fusion([CX01], H1)
        assert ok

    def test_noise_commutation_admits_phase_gate_after_cx(self, london):
        # 2q depolarizing commutes with anything on the pair, and T's
        # conjugation commutes with amplitude+phase damping.
        ok, _ = can_extend_fusion([CX01], T1, noise_model=london)
        assert ok

    def test_noise_commutation_blocks_h_after_noisy_gate(self, london):
        # H does not commute with the thermal-relaxation channel attached
        # to the preceding single-qubit gate.
        ok, reason = can_extend_fusion([T0], H0, noise_model=london)
        assert not ok
        assert "commute" in reason

    def test_noise_commutation_blocks_cx_after_noisy_h(self, london):
        ok, reason = can_extend_fusion([H0], CX01, noise_model=london)
        assert not ok
        assert "commute" in reason


class TestFusedStepCertificate:
    def test_sound_fusion_is_clean(self):
        assert verify_fused_step(fuse(H0, CX01, T1)) == []

    def test_global_phase_is_tolerated(self):
        step = fuse(H0, CX01)
        rotated = GateStep(
            name=step.name,
            qubits=step.qubits,
            slots=(),
            matrix=np.exp(0.7j) * step.matrix,
            fused_from=step.fused_from,
        )
        assert verify_fused_step(rotated) == []

    def test_unfused_step_is_vacuously_clean(self):
        assert verify_fused_step(H0) == []

    def test_corrupted_matrix_fires_ver401(self):
        step = fuse(H0, CX01)
        corrupted = np.array(step.matrix)
        corrupted[0, 0] += 1e-3
        bad = GateStep(
            name=step.name,
            qubits=step.qubits,
            slots=(),
            matrix=corrupted,
            fused_from=step.fused_from,
        )
        [finding] = verify_fused_step(bad)
        assert finding.code == "VER401"
        assert finding.severity is Severity.ERROR

    def test_wrong_product_order_fires_ver401(self):
        # H then CX, but the matrix multiplies in the opposite order.
        wrong = np.kron(gates.HADAMARD, np.eye(2)) @ gates.CNOT
        bad = GateStep(
            name="fused(h+cx)",
            qubits=(0, 1),
            slots=(),
            matrix=wrong,
            fused_from=(H0, CX01),
        )
        [finding] = verify_fused_step(bad)
        assert finding.code == "VER401"

    def test_parametric_provenance_fires_ver401(self):
        bad = GateStep(
            name="fused(ry+h)",
            qubits=(0,),
            slots=(),
            matrix=gates.HADAMARD,
            fused_from=(parametric(), H0),
        )
        [finding] = verify_fused_step(bad)
        assert finding.code == "VER401"
        assert "parametric" in finding.message

    def test_shape_mismatch_fires_ver401(self):
        bad = GateStep(
            name="fused(h+cx)",
            qubits=(0, 1),
            slots=(),
            matrix=gates.HADAMARD,  # 2x2 instead of 4x4
            fused_from=(H0, CX01),
        )
        [finding] = verify_fused_step(bad)
        assert finding.code == "VER401"
        assert "shape" in finding.message


class TestFoldedSuperoperatorCertificate:
    def fused_plan(self, noise_model, *steps):
        """The engine's actual folded plan for a correctly fused step."""
        step = fuse(*steps)
        engine = DensitySuperoperatorEngine(noise_model)
        return step, engine._fused_superoperator(step)

    def test_engine_fold_is_clean(self, london):
        step, plan = self.fused_plan(london, CX01, T1)
        assert verify_fused_superoperator_plan(step, plan, london) == []

    def test_ideal_fold_is_clean(self):
        ideal = NoiseModel.ideal()
        step, plan = self.fused_plan(ideal, H0, CX01, T1)
        assert verify_fused_superoperator_plan(step, plan, ideal) == []

    def test_dropped_noise_fires_ver402(self, london):
        from repro.quantum.program import conjugation_superoperator

        step = fuse(CX01, T1)
        bare = conjugation_superoperator(step.matrix)
        findings = verify_fused_superoperator_plan(step, bare, london)
        assert findings and {f.code for f in findings} == {"VER402"}

    def test_wrong_noise_model_fires_ver402(self, london):
        step, plan = self.fused_plan(london, CX01, T1)
        findings = verify_fused_superoperator_plan(step, plan, NoiseModel.ideal())
        assert findings and {f.code for f in findings} == {"VER402"}

    def test_non_cptp_fold_fires_ver402(self, london):
        step, plan = self.fused_plan(london, CX01, T1)
        findings = verify_fused_superoperator_plan(step, 1.5 * plan, london)
        assert findings
        assert {f.code for f in findings} == {"VER402"}
        assert any("CPTP" in f.message for f in findings)

    def test_unfused_step_is_vacuously_clean(self, london):
        assert verify_fused_superoperator_plan(CX01, np.eye(16), london) == []


def prefix_program():
    qc = QuantumCircuit(2, 2, name="prefix")
    qc.h(0)
    qc.ry(0.3, 0)
    qc.ry(0.5, 1)
    qc.measure(0, 0)
    qc.measure(1, 1)
    return SweepProgram.compile(qc, bind_floats=True), qc


class TestSharedPrefix:
    def test_prefix_extends_through_constant_columns(self):
        program, _ = prefix_program()
        bindings = np.array([[0.3, 0.5], [0.3, 0.9], [0.3, 0.1]])
        # h is fixed, the first ry reads a row-constant column, the second
        # ry's column varies.
        assert shared_prefix_length(program, bindings) == 2

    def test_all_constant_rows_share_everything(self):
        program, _ = prefix_program()
        bindings = np.tile([[0.3, 0.5]], (4, 1))
        assert shared_prefix_length(program, bindings) == len(program.steps)

    def test_legal_claim_is_clean(self):
        program, _ = prefix_program()
        bindings = np.array([[0.3, 0.5], [0.3, 0.9]])
        assert verify_shared_prefix(program, bindings, 2) == []

    def test_over_claimed_prefix_fires_ver403(self):
        program, _ = prefix_program()
        bindings = np.array([[0.3, 0.5], [0.3, 0.9]])
        [finding] = verify_shared_prefix(program, bindings, 3)
        assert finding.code == "VER403"

    def test_claim_beyond_program_length_fires_ver403(self):
        program, _ = prefix_program()
        bindings = np.array([[0.3, 0.5], [0.3, 0.9]])
        [finding] = verify_shared_prefix(program, bindings, len(program.steps) + 1)
        assert finding.code == "VER403"
        assert "exceeds" in finding.message


def fusable_program():
    qc = QuantumCircuit(3, 3, name="fusable")
    qc.h(0)
    qc.cx(0, 1)
    qc.t(1)
    qc.ry(0.4, 2)
    qc.cx(1, 2)
    qc.s(2)
    qc.measure_all()
    return SweepProgram.compile(qc, bind_floats=True)


class TestTranslationWitness:
    def test_certified_optimization_is_clean(self):
        source = fusable_program()
        optimized = source.optimized()
        assert any(step.fused_from for step in optimized.steps)
        findings = verify_translation(source, optimized)
        assert findings == []

    def test_vacuous_pass_warns_ver411(self):
        source = fusable_program()
        findings = verify_translation(source, source)
        assert [f.code for f in findings] == ["VER411"]
        assert findings[0].severity is Severity.WARNING

    def test_mutated_metadata_fires_ver410(self):
        source = fusable_program()
        optimized = source.optimized()
        optimized.num_qubits += 1
        findings = verify_translation(source, optimized)
        assert any(
            f.code == "VER410" and "num_qubits" in f.message for f in findings
        )

    def test_dropped_step_fires_ver410(self):
        source = fusable_program()
        optimized = source.optimized()
        truncated = optimized._with_steps(optimized.steps[:-1])
        findings = verify_translation(source, truncated)
        assert any(f.code == "VER410" for f in findings)

    def test_fused_step_with_slots_fires_ver410(self):
        source = fusable_program()
        optimized = source.optimized()
        steps = list(optimized.steps)
        index, step = next(
            (i, s) for i, s in enumerate(steps) if s.fused_from
        )
        steps[index] = GateStep(
            name=step.name,
            qubits=step.qubits,
            slots=(("column", 0, 1.0),),
            matrix=step.matrix,
            fused_from=step.fused_from,
        )
        findings = verify_translation(source, optimized._with_steps(steps))
        assert any(f.code == "VER410" and "slots" in f.message for f in findings)

    def test_provenance_union_mismatch_fires_ver410(self):
        source = fusable_program()
        optimized = source.optimized()
        steps = list(optimized.steps)
        index, step = next((i, s) for i, s in enumerate(steps) if s.fused_from)
        steps[index] = GateStep(
            name=step.name,
            qubits=step.qubits,
            slots=(),
            matrix=step.matrix,
            fused_from=step.fused_from[:-1],
        )
        findings = verify_translation(source, optimized._with_steps(steps))
        assert any(f.code == "VER410" for f in findings)

    def test_swapped_source_matrix_fires_ver410(self):
        source = fusable_program()
        optimized = source.optimized()
        steps = list(optimized.steps)
        index, step = next((i, s) for i, s in enumerate(steps) if s.fused_from)
        doctored = tuple(
            GateStep(
                name=sub.name,
                qubits=sub.qubits,
                slots=sub.slots,
                matrix=np.array(sub.matrix) * np.exp(0.3j),
                fused_from=None,
            )
            for sub in step.fused_from
        )
        steps[index] = GateStep(
            name=step.name,
            qubits=step.qubits,
            slots=(),
            matrix=step.matrix,
            fused_from=doctored,
        )
        findings = verify_translation(source, optimized._with_steps(steps))
        assert any(f.code == "VER410" and "matrix" in f.message for f in findings)


def barriered_program():
    """h/t on qubit 0, a declared barrier, then h/t on qubit 1."""
    qc = QuantumCircuit(2, 2, name="barriered")
    qc.h(0)
    qc.t(0)
    qc.barrier(0, 1)
    qc.h(1)
    qc.t(1)
    qc.measure_all()
    return SweepProgram.compile(qc, bind_floats=True)


class TestFusionBarriers:
    def test_compile_records_barrier_positions(self):
        program = barriered_program()
        assert program.fusion_barriers == (2,)

    def test_optimizer_flushes_at_barriers(self):
        program = barriered_program()
        optimized = program.optimized()
        assert verify_translation(program, optimized) == []
        position = 0
        for step in optimized.steps:
            span = len(step.fused_from) if step.fused_from else 1
            assert not any(
                position < barrier < position + span
                for barrier in program.fusion_barriers
            )
            position += span

    def test_cross_barrier_fusion_fires_ver404(self):
        """Sabotage: hand-fuse the steps on either side of the barrier.

        The fused matrix is algebraically sound (disjoint qubits), so every
        other certificate stays clean — only the barrier straddle must fire,
        with its exact code.
        """
        program = barriered_program()
        steps = program.steps
        sabotaged = program._with_steps(
            (steps[0], fuse(steps[1], steps[2]), steps[3])
        )
        findings = verify_translation(program, sabotaged)
        assert [finding.code for finding in findings] == ["VER404"]

    def test_grid_discriminator_fusion_respects_the_seam(self):
        """The whole-grid program's trained/encoder barrier survives fusion.

        Goes through the transpiled symbolic template (as the noisy grid
        path does): basis decomposition produces fixed steps that actually
        fuse, and routing must carry the seam barrier through to the
        compiled program.
        """
        from repro.core.model import QuClassi
        from repro.quantum.transpiler import TranspileCache

        builder = QuClassi(
            num_features=4, num_classes=2, architecture="s", seed=7
        ).builder
        entry = TranspileCache().symbolic_template(
            builder.symbolic_discriminator(), builder.grid_parameters
        )
        source = entry.ensure_program(optimize=False)
        assert source.fusion_barriers  # the seam barrier survived transpile
        optimized = source.optimized()
        assert any(step.fused_from for step in optimized.steps)
        assert optimized.fusion_barriers == source.fusion_barriers
        assert verify_translation(source, optimized) == []


class TestReferenceEquivalence:
    def test_reference_suite_certifies_clean(self):
        from repro.analysis.equiv import verify_reference_equivalence

        assert verify_reference_equivalence() == []


class TestCliIntegration:
    def test_split_select_carves_four_families(self):
        lint, flow, shapes, equiv = _split_select("VER401,REP101,VER301,REP001")
        assert lint == ("REP001",)
        assert flow == ("REP101",)
        assert shapes == ("VER301",)
        assert equiv == ("VER401",)

    def test_split_select_none_runs_everything(self):
        assert _split_select(None) == (None, None, None, None)

    def test_every_equiv_code_is_selectable(self):
        for code in EQUIV_CODES:
            _, _, _, equiv = _split_select(code)
            assert equiv == (code,)

    def test_select_equiv_without_verify_runs_nothing(self, tmp_path):
        # The reference equivalence suite only runs under --verify;
        # selecting a VER4xx code alone is an empty (clean) run.
        target = tmp_path / "empty.py"
        target.write_text("x = 1\n")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                str(target),
                "--select",
                "VER401",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
