"""Tests for the static cost-model verifier (:mod:`repro.analysis.cost`).

Two halves: a malformed-plan corpus asserting that every budget-exceeding
``TilePlan`` is rejected with the exact VER2xx code, and the calibration
contract — the predicted peak bytes of the Iris-4 and MNIST-8 reference
programs must stay within 1.5x of a tracemalloc-measured tiled execution
(the factor ``benchmarks/bench_program_compile.py`` records alongside its
tracemalloc peaks).
"""

import tracemalloc

import numpy as np
import pytest

from repro.analysis.cost import (
    COST_CODES,
    estimate_cost,
    reference_cost_reports,
    verify_cost,
    verify_reference_costs,
)
from repro.analysis.diagnostics import Severity
from repro.core.model import QuClassi
from repro.quantum.program import StatevectorEngine, SweepProgram, TilePlan
from repro.utils.rng import ensure_rng

#: Calibration tolerance of the peak-bytes prediction (both directions).
ACCURACY_FACTOR = 1.5


def compile_discriminator(num_features, architecture="s", seed=2022):
    """One bound QuClassi discriminator program plus its binding row."""
    rng = ensure_rng(seed)
    builder = QuClassi(
        num_features=num_features, num_classes=2, architecture=architecture, seed=seed
    ).builder
    circuit = builder.build(
        rng.uniform(0.05, 1.0, size=num_features),
        rng.uniform(0.0, np.pi, size=len(builder.parameters)),
    )
    program = SweepProgram.compile(circuit, bind_floats=True)
    return program, program.binding_row(circuit)


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


# --------------------------------------------------------------------------- #
# The abstract interpreter
# --------------------------------------------------------------------------- #


class TestEstimateCost:
    def test_statevector_element_is_2_to_n(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan.for_circuit_sweep(4, 8, 2**program.num_qubits, 2**20)
        report = estimate_cost(program, plan)
        assert report.element_amplitudes == 2**program.num_qubits
        assert report.peak_amplitudes == report.tile_elements * 2**program.num_qubits

    def test_density_element_is_4_to_n(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan.for_circuit_sweep(4, 8, 4**program.num_qubits, 2**20)
        report = estimate_cost(program, plan, engine="density")
        assert report.element_amplitudes == 4**program.num_qubits
        assert report.superoperator_contractions == report.contractions

    def test_contractions_scale_with_tiles(self):
        program, _ = compile_discriminator(4)
        element = 2**program.num_qubits
        one_tile = estimate_cost(
            program, TilePlan.for_circuit_sweep(4, 8, element, element * 32)
        )
        many_tiles = estimate_cost(
            program, TilePlan.for_circuit_sweep(4, 8, element, element * 4)
        )
        assert one_tile.num_tiles == 1
        assert many_tiles.num_tiles > 1
        assert many_tiles.contractions == many_tiles.num_tiles * len(program.steps)
        assert one_tile.contractions == len(program.steps)

    def test_state_overlap_mode_sums_row_and_sample_tiles(self):
        program, _ = compile_discriminator(4)
        element = 2**program.num_qubits
        plan = TilePlan.for_state_overlap(6, 10, element, element * 8)
        report = estimate_cost(program, plan, mode="state_overlap")
        assert report.tile_elements == min(6, plan.row_tile) + min(
            10, plan.sample_tile
        )

    def test_unknown_engine_or_mode_rejected(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan.for_circuit_sweep(2, 2, 2**program.num_qubits, 2**20)
        with pytest.raises(ValueError):
            estimate_cost(program, plan, engine="tensor-network")
        with pytest.raises(ValueError):
            estimate_cost(program, plan, mode="diagonal")

    def test_report_round_trips_to_dict(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan.for_circuit_sweep(2, 2, 2**program.num_qubits, 2**20)
        payload = estimate_cost(program, plan).to_dict()
        for key in ("program", "engine", "mode", "peak_bytes", "contractions"):
            assert key in payload
        assert payload["shared_prefix_steps"] == 0

    def test_shared_prefix_steps_discount_element_contractions(self):
        program, _ = compile_discriminator(4)
        element = 2**program.num_qubits
        plan = TilePlan.for_grid_sweep(8, 4, element, element * 4)
        baseline = estimate_cost(program, plan)
        assert baseline.element_contractions == plan.total_elements * len(
            program.steps
        )
        prefix = 3
        shared = estimate_cost(program, plan, shared_prefix_steps=prefix)
        assert shared.shared_prefix_steps == prefix
        # Prefix steps cost one element per TILE instead of one per element.
        assert shared.element_contractions == (
            shared.num_tiles * prefix
            + plan.total_elements * (len(program.steps) - prefix)
        )
        assert shared.element_contractions < baseline.element_contractions
        # The einsum-call count is tiling-determined either way.
        assert shared.contractions == baseline.contractions

    def test_shared_prefix_steps_out_of_range_rejected(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan.for_grid_sweep(2, 2, 2**program.num_qubits, 2**20)
        with pytest.raises(ValueError):
            estimate_cost(program, plan, shared_prefix_steps=-1)
        with pytest.raises(ValueError):
            estimate_cost(program, plan, shared_prefix_steps=len(program.steps) + 1)


# --------------------------------------------------------------------------- #
# The VER2xx budget corpus — every malformed plan must be rejected
# --------------------------------------------------------------------------- #


class TestVerifyCost:
    def test_tile_over_budget_is_ver201_error(self):
        program, _ = compile_discriminator(4)
        element = 2**program.num_qubits
        # Hand-built plan whose declared budget covers 4 elements but whose
        # tile holds 64 — the shape for_circuit_sweep would never produce.
        plan = TilePlan(
            rows=8, samples=8, row_tile=8, sample_tile=8, max_amplitudes=element * 4
        )
        diagnostics = verify_cost(program, plan)
        assert codes_of(diagnostics) == ["VER201"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_single_element_over_budget_is_ver202_error(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan(
            rows=8,
            samples=8,
            row_tile=8,
            sample_tile=8,
            max_amplitudes=2**program.num_qubits - 1,
        )
        diagnostics = verify_cost(program, plan)
        assert codes_of(diagnostics) == ["VER202"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_underutilised_tiling_is_ver203_warning(self):
        program, _ = compile_discriminator(4)
        element = 2**program.num_qubits
        plan = TilePlan(
            rows=64, samples=8, row_tile=1, sample_tile=8, max_amplitudes=element * 512
        )
        diagnostics = verify_cost(program, plan)
        assert codes_of(diagnostics) == ["VER203"]
        assert diagnostics[0].severity is Severity.WARNING

    def test_prefix_shared_grid_plan_is_exempt_from_ver203(self):
        """Regression: grid plans' single-row tiles are deliberate, not waste.

        ``TilePlan.for_grid_sweep`` tiles one parameter row at a time so the
        executor can evolve the shared trained-state prefix once per tile —
        the cost model used to flag exactly this shape as under-utilised.
        The hand-built twin WITHOUT the ``shared_prefix`` claim pins the old
        false positive: same geometry, VER203 fires.
        """
        program, _ = compile_discriminator(4)
        element = 2**program.num_qubits
        grid_plan = TilePlan.for_grid_sweep(64, 8, element, element * 512)
        assert grid_plan.shared_prefix is True
        assert grid_plan.row_tile == 1
        assert verify_cost(program, grid_plan) == []
        twin = TilePlan(
            rows=64, samples=8, row_tile=1, sample_tile=8, max_amplitudes=element * 512
        )
        assert codes_of(verify_cost(program, twin)) == ["VER203"]

    def test_density_unrunnable_budget_is_ver205_warning(self):
        program, _ = compile_discriminator(16)  # 17-qubit MNIST discriminator
        element = 2**program.num_qubits
        plan = TilePlan.for_circuit_sweep(6, 24, element, 2**21)
        diagnostics = verify_cost(program, plan)
        assert codes_of(diagnostics) == ["VER205"]
        assert 4**program.num_qubits > 2**21  # the property VER205 encodes

    def test_derived_plans_verify_clean(self):
        program, _ = compile_discriminator(4)
        element = 2**program.num_qubits
        plan = TilePlan.for_circuit_sweep(16, 64, element, element * 64)
        assert verify_cost(program, plan) == []

    def test_undeclared_budget_verifies_vacuously(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan(rows=1024, samples=1024, row_tile=1024, sample_tile=1024)
        assert verify_cost(program, plan) == []

    def test_every_budget_exceeding_corpus_plan_is_rejected(self):
        """No budget violation slips through, across both engines."""
        program, _ = compile_discriminator(8)
        element = 2**program.num_qubits
        corpus = [
            TilePlan(rows=4, samples=4, row_tile=4, sample_tile=4,
                     max_amplitudes=element),       # 16 elements, budget for 1
            TilePlan(rows=2, samples=2, row_tile=2, sample_tile=2,
                     max_amplitudes=element // 2),  # element itself too big
            TilePlan(rows=32, samples=32, row_tile=32, sample_tile=32,
                     max_amplitudes=element * 100),  # 1024 elements vs 100
        ]
        for plan in corpus:
            for engine in ("statevector", "density"):
                diagnostics = verify_cost(program, plan, engine=engine)
                assert any(
                    d.severity is Severity.ERROR and d.code in ("VER201", "VER202")
                    for d in diagnostics
                ), (plan, engine)

    def test_catalogue_codes(self):
        assert sorted(COST_CODES) == ["VER201", "VER202", "VER203", "VER205"]


# --------------------------------------------------------------------------- #
# Reference suite + tracemalloc calibration
# --------------------------------------------------------------------------- #


class TestReferenceSuite:
    def test_reference_reports_cover_both_engines(self):
        reports = reference_cost_reports()
        assert len(reports) == 8  # 4 workloads x 2 engines
        assert {r.engine for r in reports} == {"statevector", "density"}
        assert all(r.max_amplitudes is not None for r in reports)

    def test_reference_plans_verify_clean(self):
        assert verify_reference_costs() == []


class TestTracemallocCalibration:
    """Predicted peak bytes within 1.5x of a measured tiled execution."""

    def measure(self, num_features, rows, samples, budget_amplitudes):
        program, row = compile_discriminator(num_features)
        plan = TilePlan.for_circuit_sweep(
            rows, samples, 2**program.num_qubits, budget_amplitudes
        )
        report = estimate_cost(program, plan)
        engine = StatevectorEngine()
        tracemalloc.start()
        bindings = np.tile(np.asarray(row, dtype=float), (rows * samples, 1))
        program.execute(bindings, engine, tile_plan=plan)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return report, peak

    @pytest.mark.parametrize(
        "num_features,rows,samples,budget",
        [
            # Iris-4 discriminator: single-tile and tiled executions.
            (4, 64, 2048, 2**22),
            (4, 64, 2048, 2**19),
            # MNIST-8 discriminator: single-tile and tiled executions.
            (8, 16, 512, 2**22),
            (8, 16, 512, 2**20),
        ],
    )
    def test_predicted_peak_within_factor_of_tracemalloc(
        self, num_features, rows, samples, budget
    ):
        report, measured = self.measure(num_features, rows, samples, budget)
        assert measured > 0
        ratio = report.peak_bytes / measured
        assert 1 / ACCURACY_FACTOR <= ratio <= ACCURACY_FACTOR, (
            f"predicted {report.peak_bytes} vs measured {measured} "
            f"(ratio {ratio:.2f})"
        )


class TestDtypeAwareCost:
    """Peak-bytes predictions track the repro.arrays precision knob."""

    def _report(self):
        program, _ = compile_discriminator(4)
        plan = TilePlan.for_circuit_sweep(4, 8, 2**program.num_qubits, 2**20)
        return estimate_cost(program, plan)

    def test_double_mode_is_16_bytes_per_amplitude(self):
        from repro import arrays

        report = self._report()
        assert report.bytes_per_amplitude == 16
        assert report.bytes_per_amplitude == arrays.complex_itemsize()

    def test_single_mode_halves_the_amplitude_term(self):
        from repro import arrays

        double = self._report()
        with arrays.precision("single"):
            single = self._report()
        assert single.bytes_per_amplitude == 8
        assert single.peak_amplitudes == double.peak_amplitudes
        # Only amplitude bytes follow the knob — the float64 bindings and
        # read-out buffers (the sampling boundary) are knob-independent,
        # so the delta is exactly the halved amplitude term.
        amplitude_term = 3 * double.peak_amplitudes * 16
        assert double.peak_bytes - single.peak_bytes == amplitude_term // 2
        assert single.peak_bytes < double.peak_bytes

    def test_bytes_per_amplitude_serialized(self):
        payload = self._report().to_dict()
        assert payload["bytes_per_amplitude"] == 16
