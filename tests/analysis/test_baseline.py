"""Tests for the findings baseline ratchet (:mod:`repro.analysis.baseline`).

The headline test is tier-1: the shipped tree analyzed against the
checked-in ``analysis_baseline.json`` must produce **no** findings the
baseline does not carry.  Acquiring one fails this suite until the finding
is fixed or the baseline is consciously regenerated in a reviewed change.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    DEFAULT_BASELINE_PATH,
    baseline_payload,
    load_baseline,
    split_by_baseline,
    validate_baseline_payload,
    write_baseline,
)
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.flow import analyze_paths
from repro.analysis.lint import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE_FILE = os.path.join(REPO_ROOT, DEFAULT_BASELINE_PATH)


def diag(code="REP001", file="src/x.py", line=3):
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        location=Location(file=file, line=line, column=1),
        message="message",
    )


class TestRatchet:
    """The tier-1 guarantee: the tree stays no dirtier than the baseline."""

    def test_checked_in_baseline_is_valid_and_empty(self):
        with open(BASELINE_FILE, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_baseline_payload(payload) == []
        # The tree is currently clean; growing this list requires a
        # conscious --write-baseline in a reviewed change.
        assert payload["findings"] == []

    def test_shipped_tree_has_no_findings_beyond_the_baseline(self):
        accepted = load_baseline(BASELINE_FILE)
        paths = [os.path.join(REPO_ROOT, p) for p in ("src", "benchmarks")]
        lint = lint_paths(paths)
        flow = analyze_paths(paths)
        fresh, _ = split_by_baseline(lint.diagnostics + flow.diagnostics, accepted)
        assert fresh == [], [
            f"{d.code} {d.location.file}:{d.location.line}" for d in fresh
        ]


class TestBaselineRoundTrip:
    def test_payload_dedupes_and_sorts_keys(self):
        payload = baseline_payload(
            [diag(line=3), diag(line=9), diag(code="REP002", file="src/a.py")]
        )
        assert payload["version"] == BASELINE_VERSION
        assert payload["findings"] == [
            {"code": "REP001", "file": "src/x.py"},
            {"code": "REP002", "file": "src/a.py"},
        ]

    def test_write_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [diag()])
        assert load_baseline(path) == {("REP001", "src/x.py")}

    def test_rewrite_prunes_stale_entries_and_reports_count(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        _, pruned = write_baseline(
            path, [diag(), diag(code="REP002", file="src/a.py")]
        )
        assert pruned == 0  # nothing pre-existing to prune
        payload, pruned = write_baseline(path, [diag()])
        assert pruned == 1
        assert payload["findings"] == [{"code": "REP001", "file": "src/x.py"}]
        assert load_baseline(path) == {("REP001", "src/x.py")}

    def test_rewrite_over_unreadable_baseline_prunes_nothing(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        _, pruned = write_baseline(str(path), [diag()])
        assert pruned == 0
        assert load_baseline(str(path)) == {("REP001", "src/x.py")}

    def test_split_drops_only_baselined_findings(self):
        accepted = {("REP001", "src/x.py")}
        fresh, baselined = split_by_baseline(
            [diag(), diag(line=99), diag(file="src/other.py")], accepted
        )
        assert baselined == 2  # both lines of the accepted (code, file) pair
        assert [d.location.file for d in fresh] == ["src/other.py"]

    def test_load_rejects_invalid_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "tool": "other", "findings": 3}))
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_validator_flags_malformed_findings(self):
        problems = validate_baseline_payload(
            {
                "version": BASELINE_VERSION,
                "tool": "repro.analysis",
                "findings": [{"code": 7, "file": "src/x.py"}, "nope"],
            }
        )
        assert any("code" in p for p in problems)
        assert any("findings[1]" in p for p in problems)


class TestBaselineCli:
    def run_cli(self, *argv, cwd=REPO_ROOT):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    def test_baseline_subtracts_known_findings(self, tmp_path):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        target = str(tmp_path)

        dirty = self.run_cli(target)
        assert dirty.returncode == 1

        baseline = str(tmp_path / "baseline.json")
        wrote = self.run_cli(target, "--write-baseline", baseline)
        assert wrote.returncode == 0, wrote.stdout + wrote.stderr
        assert "1 accepted finding(s)" in wrote.stdout
        assert "pruned 0 stale entries" in wrote.stdout

        clean = self.run_cli(target, "--baseline", baseline)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "1 baselined finding(s) ignored" in clean.stdout

        # Fixing the finding and rewriting prunes its stale entry.
        bad.write_text("import numpy as np\n")
        rewrote = self.run_cli(target, "--write-baseline", baseline)
        assert rewrote.returncode == 0, rewrote.stdout + rewrote.stderr
        assert "0 accepted finding(s)" in rewrote.stdout
        assert "pruned 1 stale entry" in rewrote.stdout
        with open(baseline, "r", encoding="utf-8") as handle:
            assert json.load(handle)["findings"] == []

    def test_new_finding_still_gates_exit_code(self, tmp_path):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        baseline = str(tmp_path / "baseline.json")
        assert self.run_cli(str(tmp_path), "--write-baseline", baseline).returncode == 0

        other = tmp_path / "src" / "worse.py"
        other.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        proc = self.run_cli(str(tmp_path), "--baseline", baseline)
        assert proc.returncode == 1
        assert "worse.py" in proc.stdout
        assert "bad.py" not in proc.stdout.replace("worse.py", "")

    def test_invalid_baseline_is_usage_error(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{\"version\": 99}")
        proc = self.run_cli("src", "--baseline", str(broken))
        assert proc.returncode == 2
        assert "invalid baseline" in proc.stderr

    def test_shipped_tree_is_clean_under_the_checked_in_baseline(self):
        proc = self.run_cli("src", "benchmarks", "--baseline", DEFAULT_BASELINE_PATH)
        assert proc.returncode == 0, proc.stdout + proc.stderr
