"""Tests for the cross-module flow analyzers (:mod:`repro.analysis.flow`).

The corpus analyzes small in-memory projects — multiple virtual files under
``src/repro/...`` — and asserts exact codes and line anchors, mirroring the
linter-corpus idiom of ``test_lint.py``.  The REP102 class includes, nearly
verbatim, the pre-fix trainer pattern from PR 4 (one ``self.rng`` threaded
into every per-class submission) so that defect class stays pinned by a
regression test the analyzer must keep catching.
"""

import pytest

from repro.analysis.flow import (
    FLOW_CODES,
    analyze_sources,
    find_entry_points,
)
from repro.analysis.flow.graph import Project


def analyze(*sources, codes=None):
    """analyze_sources over (path, source) pairs given as alternating args."""
    pairs = [(sources[i], sources[i + 1]) for i in range(0, len(sources), 2)]
    return analyze_sources(pairs, codes)


def codes_of(result):
    return [d.code for d in result.diagnostics]


def lines_of(result):
    return [d.location.line for d in result.diagnostics]


# --------------------------------------------------------------------------- #
# Entry-point detection
# --------------------------------------------------------------------------- #


FANOUT = '''\
def worker(shard):
    return shard

def cell(spec):
    return spec

def run(executor, shards):
    return list(executor.map(worker, shards))

def run_one(executor, shard):
    return executor.submit(worker, shard)

def figures(run_cells, specs):
    return run_cells(cell, specs)
'''


class TestEntryPoints:
    def test_map_submit_and_run_cells_first_args_are_entry_points(self):
        project = Project.from_sources([("src/repro/fanout.py", FANOUT)])
        points = find_entry_points(project)
        names = {ep.qualname for ep in points}
        assert "repro.fanout.worker" in names
        assert "repro.fanout.cell" in names

    def test_real_tree_entry_points_include_trainer_and_harness(self):
        """Structural detection over the shipped tree (no hard-coded seeds)."""
        import os

        from repro.analysis.flow import analyze_paths

        repo = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        result = analyze_paths([os.path.join(repo, "src")], root=repo)
        names = {ep.qualname for ep in result.entry_points}
        assert any(name.endswith("._run_class_shard") for name in names)
        assert any(name.endswith("._run_sweep_cell") for name in names)


# --------------------------------------------------------------------------- #
# REP101 — shard-reachable shared-state writes
# --------------------------------------------------------------------------- #


RACE = '''\
counts = {}

class Tally:
    def __init__(self):
        self.total = 0

    def bump(self):
        self.total += 1

def worker(shard, tally):
    tally.bump()
    counts[shard] = 1
    return shard

def run(executor, shards, tally):
    return list(executor.map(worker, shards))
'''


class TestRep101SharedState:
    def test_attribute_rmw_and_module_dict_store_are_flagged(self):
        result = analyze("src/repro/race.py", RACE, codes=["REP101"])
        assert codes_of(result) == ["REP101", "REP101"]
        # self.total += 1 inside Tally.bump, counts[shard] = 1 inside worker
        assert sorted(lines_of(result)) == [8, 12]

    def test_lock_guarded_write_is_clean(self):
        source = RACE.replace(
            "    def bump(self):\n        self.total += 1\n",
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.total += 1\n",
        ).replace("    counts[shard] = 1\n", "")
        result = analyze("src/repro/race.py", source, codes=["REP101"])
        assert codes_of(result) == []

    def test_thread_safe_annotation_exempts_the_class(self):
        source = RACE.replace(
            "class Tally:\n",
            "class Tally:\n    __thread_safe__ = True\n",
        ).replace("    counts[shard] = 1\n", "")
        result = analyze("src/repro/race.py", source, codes=["REP101"])
        assert codes_of(result) == []

    def test_unreachable_write_is_not_flagged(self):
        """The same write outside the shard-reachable region stays silent."""
        source = RACE.replace(
            "def run(executor, shards, tally):\n"
            "    return list(executor.map(worker, shards))\n",
            "def run(shards, tally):\n"
            "    return [worker(s, tally) for s in shards]\n",
        )
        result = analyze("src/repro/race.py", source, codes=["REP101"])
        assert codes_of(result) == []

    def test_worker_local_object_writes_are_skipped(self):
        source = '''\
def worker(shard):
    acc = Accumulator()
    acc.total = shard
    return acc.total

class Accumulator:
    def __init__(self):
        self.total = 0

def run(executor, shards):
    return list(executor.map(worker, shards))
'''
        result = analyze("src/repro/local.py", source, codes=["REP101"])
        # Accumulator.__init__ initialises self.total, but acc is built inside
        # the shard body, so the worker's write to it is local by construction.
        assert [d.location.line for d in result.diagnostics if d.code == "REP101"] == []

    def test_cross_module_reachability(self):
        """The race is found even when the write lives two modules away."""
        entry = '''\
from repro.helpers import step

def worker(shard):
    return step(shard)

def run(executor, shards):
    return list(executor.map(worker, shards))
'''
        helper = '''\
from repro.state import record

def step(shard):
    return record(shard)
'''
        state = '''\
seen = []

def record(shard):
    seen.append(shard)
    return shard
'''
        result = analyze(
            "src/repro/entry.py", entry,
            "src/repro/helpers.py", helper,
            "src/repro/state.py", state,
            codes=["REP101"],
        )
        # seen.append(...) is an attribute call, not a write statement the
        # dataflow pass models; the module-global store variant must flag.
        state_store = state.replace(
            "seen = []\n\ndef record(shard):\n    seen.append(shard)\n",
            "seen = {}\n\ndef record(shard):\n    seen[shard] = True\n",
        )
        result = analyze(
            "src/repro/entry.py", entry,
            "src/repro/helpers.py", helper,
            "src/repro/state.py", state_store,
            codes=["REP101"],
        )
        assert codes_of(result) == ["REP101"]
        assert result.diagnostics[0].location.file == "src/repro/state.py"

    def test_noqa_suppression_is_counted_per_code(self):
        source = RACE.replace(
            "        self.total += 1",
            "        self.total += 1  # repro: noqa REP101 -- corpus fixture",
        ).replace(
            "    counts[shard] = 1",
            "    counts[shard] = 1  # repro: noqa REP101 -- corpus fixture",
        )
        result = analyze("src/repro/race.py", source, codes=["REP101"])
        assert codes_of(result) == []
        assert result.suppressed == 2
        assert result.suppressed_by_code == {"REP101": 2}


# --------------------------------------------------------------------------- #
# REP102 — Generator aliasing across shard submissions
# --------------------------------------------------------------------------- #


PR4_TRAINER = '''\
class Trainer:
    def fit(self, executor, class_indices):
        futures = []
        for class_index in class_indices:
            futures.append(
                executor.submit(self._run_class, class_index, self.rng)
            )
        return [future.result() for future in futures]

    def _run_class(self, class_index, rng):
        return rng.normal()
'''

SPAWNED_TRAINER = '''\
from repro.utils.rng import spawn_rngs

class Trainer:
    def fit(self, executor, class_indices):
        class_rngs = spawn_rngs(self.rng, len(class_indices))
        futures = []
        for class_index in class_indices:
            futures.append(
                executor.submit(
                    self._run_class, class_index, class_rngs[class_index]
                )
            )
        return [future.result() for future in futures]

    def _run_class(self, class_index, rng):
        return rng.normal()
'''


class TestRep102SeedAliasing:
    def test_pr4_prefix_trainer_pattern_is_flagged(self):
        """Regression: the shared-self.rng-per-class shape of the PR 4 bug."""
        result = analyze("src/repro/trainer.py", PR4_TRAINER, codes=["REP102"])
        assert codes_of(result) == ["REP102"]
        assert "self.rng" in result.diagnostics[0].message

    def test_post_fix_spawned_streams_are_clean(self):
        """The shipped fix — per-class spawn_rngs streams — must not flag."""
        result = analyze("src/repro/trainer.py", SPAWNED_TRAINER, codes=["REP102"])
        assert codes_of(result) == []

    def test_same_rng_in_two_submissions_is_flagged(self):
        source = '''\
from repro.utils.rng import ensure_rng

def run(executor):
    rng = ensure_rng(0)
    a = executor.submit(job, rng)
    b = executor.submit(job, rng)
    return a, b

def job(rng):
    return rng.normal()
'''
        result = analyze("src/repro/twice.py", source, codes=["REP102"])
        assert codes_of(result) == ["REP102"]
        assert result.diagnostics[0].location.line == 6  # the second submit

    def test_loop_invariant_rng_in_comprehension_is_flagged(self):
        source = '''\
def run(self, executor, shards):
    futures = [executor.submit(job, shard, self.rng) for shard in shards]
    return futures

def job(shard, rng):
    return rng.normal()
'''
        result = analyze("src/repro/comp.py", source, codes=["REP102"])
        assert codes_of(result) == ["REP102"]

    def test_spawn_call_inside_loop_is_sanctioned(self):
        source = '''\
from repro.utils.rng import spawn_rngs

def run(self, executor, shards):
    futures = []
    for index, shard in enumerate(shards):
        streams = spawn_rngs(self.rng, 2)
        futures.append(executor.submit(job, shard, streams[0]))
    return futures

def job(shard, rng):
    return rng.normal()
'''
        result = analyze("src/repro/spawned.py", source, codes=["REP102"])
        assert codes_of(result) == []

    def test_functions_without_fanout_are_ignored(self):
        source = '''\
def helper(self, items):
    out = []
    for item in items:
        out.append(compute(item, self.rng))
    return out

def compute(item, rng):
    return rng.normal()
'''
        result = analyze("src/repro/nofan.py", source, codes=["REP102"])
        assert codes_of(result) == []


# --------------------------------------------------------------------------- #
# REP103 — transitive payload picklability
# --------------------------------------------------------------------------- #


class TestRep103Picklability:
    def test_direct_threading_field_is_flagged(self):
        source = '''\
import threading

class EstimatorSpec:
    guard: threading.Lock
'''
        result = analyze("src/repro/specs.py", source, codes=["REP103"])
        assert codes_of(result) == ["REP103"]
        assert "threading primitive" in result.diagnostics[0].message

    def test_live_backend_field_is_flagged(self):
        source = '''\
class SimBackend:
    pass

class BackendSpec:
    backend: "SimBackend"
'''
        result = analyze("src/repro/specs.py", source, codes=["REP103"])
        assert codes_of(result) == ["REP103"]
        assert "SimBackend" in result.diagnostics[0].message

    def test_transitive_lock_via_helper_class_is_flagged(self):
        """The graph-based upgrade over per-file REP002: two hops deep."""
        specs = '''\
from repro.helpers import Inner

class Middle:
    def __init__(self, inner: Inner):
        self.inner = inner

class ShardPlan:
    def __init__(self, middle: Middle):
        self.middle = middle
'''
        helpers = '''\
import threading

class Inner:
    def __init__(self):
        self._lock = threading.Lock()
'''
        result = analyze(
            "src/repro/specs.py", specs,
            "src/repro/helpers.py", helpers,
            codes=["REP103"],
        )
        assert codes_of(result) == ["REP103"]
        message = result.diagnostics[0].message
        assert "ShardPlan" in message and "Inner" in message

    def test_getstate_dropping_the_lock_is_clean(self):
        source = '''\
import threading

class SafeCache:
    def __init__(self):
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

class ShardPlan:
    def __init__(self, cache: SafeCache):
        self.cache = cache
'''
        result = analyze("src/repro/specs.py", source, codes=["REP103"])
        assert codes_of(result) == []

    def test_sibling_spec_fields_are_exempt(self):
        """BackendSpec-typed fields do not trip the *Backend live suffix."""
        source = '''\
class BackendSpec:
    device: str

class EstimatorSpec:
    backend_spec: BackendSpec
'''
        result = analyze("src/repro/specs.py", source, codes=["REP103"])
        assert codes_of(result) == []


# --------------------------------------------------------------------------- #
# REP104 — engine buffers escaping into caches
# --------------------------------------------------------------------------- #


class TestRep104BufferEscape:
    def test_put_of_raw_amplitudes_is_flagged(self):
        source = '''\
def memoise(cache, key, state):
    cache.put(key, state._amplitudes)
'''
        result = analyze("src/repro/escape.py", source, codes=["REP104"])
        assert codes_of(result) == ["REP104"]

    def test_cache_subscript_store_of_tainted_name_is_flagged(self):
        source = '''\
def memoise(self, key, state):
    raw = state._matrices
    self._cache[key] = raw
'''
        result = analyze("src/repro/escape.py", source, codes=["REP104"])
        assert codes_of(result) == ["REP104"]
        assert result.diagnostics[0].location.line == 3

    def test_copy_breaks_the_taint(self):
        source = '''\
def memoise(cache, key, state):
    cache.put(key, state._amplitudes.copy())
'''
        result = analyze("src/repro/escape.py", source, codes=["REP104"])
        assert codes_of(result) == []

    def test_non_cache_store_is_ignored(self):
        source = '''\
def collect(out, key, state):
    out[key] = state._amplitudes
'''
        result = analyze("src/repro/escape.py", source, codes=["REP104"])
        assert codes_of(result) == []


# --------------------------------------------------------------------------- #
# Selection, catalogue, and robustness
# --------------------------------------------------------------------------- #


class TestOrchestration:
    def test_codes_filter_restricts_analyzers(self):
        result = analyze("src/repro/race.py", RACE, codes=["REP103"])
        assert codes_of(result) == []

    def test_catalogue_has_all_four_codes(self):
        assert sorted(FLOW_CODES) == ["REP101", "REP102", "REP103", "REP104"]

    def test_syntax_error_files_are_skipped_not_fatal(self):
        result = analyze(
            "src/repro/broken.py", "def f(:\n",
            "src/repro/race.py", RACE,
            codes=["REP101"],
        )
        assert codes_of(result) == ["REP101", "REP101"]

    def test_shipped_tree_is_flow_clean(self):
        import os

        from repro.analysis.flow import analyze_paths

        repo = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        result = analyze_paths(
            [os.path.join(repo, "src"), os.path.join(repo, "benchmarks")],
            root=repo,
        )
        assert result.diagnostics == [], "\n".join(
            d.format() for d in result.diagnostics
        )
        # The justified worker-local suppressions are counted, not dropped.
        assert result.suppressed_by_code.get("REP101", 0) >= 10
