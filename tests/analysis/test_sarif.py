"""Tests for the SARIF 2.1.0 emitter (:mod:`repro.analysis.sarif`)."""

import json
import os
import subprocess
import sys

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.sarif import (
    FINGERPRINT_KEY,
    SARIF_SCHEMA,
    SARIF_VERSION,
    rule_catalogue,
    sarif_payload,
    validate_sarif_payload,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def diag(code="REP001", severity=Severity.ERROR, file="src/x.py", line=3,
         column=1, obj=None, message="message", hint=None):
    return Diagnostic(
        code=code,
        severity=severity,
        location=Location(file=file, line=line, column=column, obj=obj),
        message=message,
        hint=hint,
    )


class TestSarifPayload:
    def test_empty_run_is_schema_valid(self):
        payload = sarif_payload([])
        assert validate_sarif_payload(payload) == []
        assert payload["version"] == SARIF_VERSION
        assert payload["$schema"] == SARIF_SCHEMA
        assert payload["runs"][0]["results"] == []
        assert payload["runs"][0]["tool"]["driver"]["name"] == "repro.analysis"

    def test_one_finding_round_trips(self):
        payload = sarif_payload([diag()])
        assert validate_sarif_payload(payload) == []
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "REP001"
        assert result["level"] == "error"
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/x.py"
        assert physical["region"] == {"startLine": 3, "startColumn": 1}

    def test_severity_level_mapping(self):
        payload = sarif_payload(
            [
                diag(code="REP001", severity=Severity.ERROR, line=1),
                diag(code="REP004", severity=Severity.WARNING, line=2),
                diag(code="REP005", severity=Severity.INFO, line=3),
            ]
        )
        levels = {r["ruleId"]: r["level"] for r in payload["runs"][0]["results"]}
        assert levels == {"REP001": "error", "REP004": "warning", "REP005": "note"}

    def test_hint_is_appended_to_message(self):
        payload = sarif_payload([diag(message="seedless rng", hint="pass a seed")])
        text = payload["runs"][0]["results"][0]["message"]["text"]
        assert text == "seedless rng (hint: pass a seed)"

    def test_obj_anchored_finding_uses_logical_location(self):
        payload = sarif_payload(
            [
                diag(
                    code="VER201",
                    file=None,
                    line=None,
                    column=None,
                    obj="iris-s:discriminator[statevector/circuit_sweep]",
                )
            ]
        )
        assert validate_sarif_payload(payload) == []
        (result,) = payload["runs"][0]["results"]
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"].startswith("iris-s:discriminator")
        assert "physicalLocation" not in result["locations"][0]

    def test_rules_array_covers_exactly_the_used_codes(self):
        payload = sarif_payload(
            [diag(code="REP001", line=1), diag(code="REP101", line=2)]
        )
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] == ["REP001", "REP101"]
        assert all(rule["shortDescription"]["text"] for rule in rules)

    def test_catalogue_spans_all_pass_families(self):
        catalogue = rule_catalogue()
        for code in ("REP000", "REP001", "REP106", "REP101", "REP104",
                     "VER101", "VER201", "VER301", "VER401", "VER410"):
            assert code in catalogue, code

    def test_validator_rejects_broken_payloads(self):
        good = sarif_payload([diag()])
        assert validate_sarif_payload({"version": "2.0.0"})
        missing_rule = json.loads(json.dumps(good))
        missing_rule["runs"][0]["tool"]["driver"]["rules"] = []
        assert any(
            "missing from the rule catalogue" in problem
            for problem in validate_sarif_payload(missing_rule)
        )
        bad_level = json.loads(json.dumps(good))
        bad_level["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level" in problem for problem in validate_sarif_payload(bad_level))


class TestPartialFingerprints:
    """The stable context hash code-scanning dedup keys results by."""

    def test_every_result_carries_the_versioned_fingerprint(self):
        payload = sarif_payload([diag(), diag(code="REP101", line=9)])
        for result in payload["runs"][0]["results"]:
            value = result["partialFingerprints"][FINGERPRINT_KEY]
            assert isinstance(value, str) and len(value) == 32

    def test_fingerprint_survives_line_drift(self):
        before = sarif_payload([diag(line=3, column=1)])
        after = sarif_payload([diag(line=57, column=9)])
        assert (
            before["runs"][0]["results"][0]["partialFingerprints"]
            == after["runs"][0]["results"][0]["partialFingerprints"]
        )

    def test_fingerprint_changes_with_rule_file_or_message(self):
        base = sarif_payload([diag()])["runs"][0]["results"][0]
        for changed in (
            diag(code="REP002"),
            diag(file="src/other.py"),
            diag(message="different"),
        ):
            other = sarif_payload([changed])["runs"][0]["results"][0]
            assert other["partialFingerprints"] != base["partialFingerprints"]

    def test_duplicate_findings_get_distinct_occurrence_hashes(self):
        payload = sarif_payload([diag(line=3), diag(line=8)])
        first, second = payload["runs"][0]["results"]
        assert first["ruleId"] == second["ruleId"] == "REP001"
        assert (
            first["partialFingerprints"][FINGERPRINT_KEY]
            != second["partialFingerprints"][FINGERPRINT_KEY]
        )

    def test_validator_requires_the_fingerprint(self):
        payload = json.loads(json.dumps(sarif_payload([diag()])))
        del payload["runs"][0]["results"][0]["partialFingerprints"]
        assert any(
            FINGERPRINT_KEY in problem
            for problem in validate_sarif_payload(payload)
        )
        payload = json.loads(json.dumps(sarif_payload([diag()])))
        payload["runs"][0]["results"][0]["partialFingerprints"] = {
            FINGERPRINT_KEY: ""
        }
        assert validate_sarif_payload(payload)


class TestSarifCli:
    def run_cli(self, *argv, cwd=REPO_ROOT):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    def test_shipped_tree_emits_valid_sarif(self):
        proc = self.run_cli("src", "benchmarks", "--format", "sarif")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert validate_sarif_payload(payload) == []
        assert payload["runs"][0]["results"] == []

    def test_findings_emit_valid_sarif_and_exit_one(self, tmp_path):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        proc = self.run_cli(str(tmp_path), "--format", "sarif")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert validate_sarif_payload(payload) == []
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "REP001"
        assert result["level"] == "error"


class TestStartColumnContract:
    """SARIF columns are 1-based; the payload boundary owns the clamp."""

    def test_zero_column_is_clamped_to_one(self):
        payload = sarif_payload([diag(column=0)])
        region = payload["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startColumn"] == 1
        assert validate_sarif_payload(payload) == []

    def test_positive_columns_pass_through(self):
        payload = sarif_payload([diag(column=7)])
        region = payload["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startColumn"] == 7

    def test_validator_rejects_non_positive_start_column(self):
        payload = sarif_payload([diag()])
        region = payload["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        for bad in (0, -3, "2"):
            region["startColumn"] = bad
            problems = validate_sarif_payload(payload)
            assert problems, f"startColumn={bad!r} must be rejected"
            assert any("startColumn" in p for p in problems)
        region["startColumn"] = 1
        assert validate_sarif_payload(payload) == []
