"""Tests for the AST contract linter (:mod:`repro.analysis.lint`).

The corpus lints small in-memory sources under crafted virtual paths —
``src/repro/...`` for library-code rules, ``benchmarks/bench_*.py`` for the
reporting rule — and asserts exact codes and line numbers.  The REP001 case
mirrors, verbatim, the seedless fallback that used to live in
``repro.quantum.measurement.counts_from_probabilities`` so the defect class
stays pinned by a regression test.
"""

import pytest

from repro.analysis.lint import (
    find_suppressions,
    lint_source,
    normalize_path,
)
from repro.analysis.rules import all_rules, select_rules

LIB = "src/repro/quantum/example.py"


def lint(source, path=LIB, rules=None):
    findings, suppressed = lint_source(source, path, rules or all_rules())
    return findings, suppressed


def codes(findings):
    return [d.code for d in findings]


# --------------------------------------------------------------------------- #
# REP001 — no seedless RNGs in library code
# --------------------------------------------------------------------------- #


class TestRep001SeedlessRng:
    def test_old_measurement_fallback_is_flagged(self):
        """Regression: the exact pre-fix line from measurement.py must flag."""
        source = (
            "import numpy as np\n"
            "def counts_from_probabilities(probabilities, shots, rng=None):\n"
            "    generator = rng if rng is not None else np.random.default_rng()\n"
        )
        findings, _ = lint(source, path="src/repro/quantum/measurement.py")
        assert codes(findings) == ["REP001"]
        assert findings[0].location.line == 3

    def test_seeded_default_rng_is_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(2022)\n"
        findings, _ = lint(source)
        assert findings == []

    def test_none_seed_is_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng(None)\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP001"]

    def test_global_numpy_random_call_is_flagged(self):
        source = "import numpy as np\nx = np.random.uniform(0, 1)\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP001"]

    def test_from_import_alias_is_tracked(self):
        source = "from numpy.random import default_rng\nrng = default_rng()\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP001"]

    def test_tests_are_out_of_scope(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        findings, _ = lint(source, path="tests/quantum/test_example.py")
        assert findings == []

    def test_current_measurement_module_is_clean(self):
        with open("src/repro/quantum/measurement.py") as handle:
            findings, _ = lint(
                handle.read(), path="src/repro/quantum/measurement.py"
            )
        assert findings == []


# --------------------------------------------------------------------------- #
# REP002 — *Spec classes stay picklable
# --------------------------------------------------------------------------- #


class TestRep002SpecPicklable:
    def test_lambda_default_is_flagged(self):
        source = (
            "class BackendSpec:\n"
            "    factory = lambda: object()\n"
        )
        findings, _ = lint(source)
        assert codes(findings) == ["REP002"]

    def test_lock_default_is_flagged(self):
        source = (
            "import threading\n"
            "class SweepSpec:\n"
            "    guard = threading.Lock()\n"
        )
        findings, _ = lint(source)
        assert codes(findings) == ["REP002"]

    def test_live_backend_annotation_is_flagged(self):
        source = (
            "class EstimatorSpec:\n"
            "    backend: QuantumBackend = None\n"
        )
        findings, _ = lint(source)
        assert codes(findings) == ["REP002"]

    def test_plain_fields_are_clean(self):
        source = (
            "class BackendSpec:\n"
            "    kind: str = 'ideal'\n"
            "    shots: int = 1024\n"
            "    child_spec: 'EstimatorSpec' = None\n"
        )
        findings, _ = lint(source)
        assert findings == []

    def test_non_spec_classes_are_out_of_scope(self):
        source = (
            "class Engine:\n"
            "    factory = lambda: object()\n"
        )
        findings, _ = lint(source)
        assert findings == []


# --------------------------------------------------------------------------- #
# REP003 — shared caches go through utils.cache.LRUCache
# --------------------------------------------------------------------------- #


class TestRep003AdHocCaches:
    def test_module_level_cache_dict_is_flagged(self):
        source = "_PROGRAM_CACHE = {}\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP003"]

    def test_class_level_memo_is_flagged(self):
        source = (
            "class Transpiler:\n"
            "    _memo = dict()\n"
        )
        findings, _ = lint(source)
        assert codes(findings) == ["REP003"]

    def test_populated_lookup_table_is_clean(self):
        source = "GATE_CACHE = {'h': 1, 'cx': 2}\n"
        findings, _ = lint(source)
        assert findings == []

    def test_non_cache_names_are_clean(self):
        source = "_registry = {}\n"
        findings, _ = lint(source)
        assert findings == []

    def test_utils_cache_module_is_exempt(self):
        source = "_cache = {}\n"
        findings, _ = lint(source, path="src/repro/utils/cache.py")
        assert findings == []


# --------------------------------------------------------------------------- #
# REP004 — engines never construct RNGs
# --------------------------------------------------------------------------- #


class TestRep004EngineRng:
    ENGINE = "src/repro/quantum/batched.py"

    def test_even_seeded_rng_is_flagged_in_engine(self):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        findings, _ = lint(source, path=self.ENGINE)
        assert codes(findings) == ["REP004"]

    def test_ensure_rng_wrapper_is_flagged_in_engine(self):
        source = (
            "from repro.utils.rng import ensure_rng\n"
            "rng = ensure_rng(7)\n"
        )
        findings, _ = lint(source, path=self.ENGINE)
        assert codes(findings) == ["REP004"]

    def test_rng_parameter_use_is_clean(self):
        # REP004 only — a bare .multinomial in an engine module is now
        # (correctly) REP202 territory, covered in test_array_rules.py.
        source = "def sample(rng, n):\n    return rng.multinomial(n, [1.0])\n"
        findings, _ = lint(source, path=self.ENGINE, rules=select_rules(["REP004"]))
        assert findings == []

    def test_non_engine_library_module_allows_seeded_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        findings, _ = lint(source, path=LIB)
        assert findings == []

    def test_shipped_engines_are_clean(self):
        for module in (
            "src/repro/quantum/batched.py",
            "src/repro/quantum/batched_density.py",
            "src/repro/quantum/program.py",
        ):
            with open(module) as handle:
                findings, _ = lint(handle.read(), path=module)
            assert findings == [], f"{module}: {[d.format() for d in findings]}"


# --------------------------------------------------------------------------- #
# REP005 — benchmarks must report perf points
# --------------------------------------------------------------------------- #


class TestRep005BenchReporting:
    def test_silent_bench_is_flagged(self):
        source = "def test_bench_thing():\n    assert 1 + 1 == 2\n"
        findings, _ = lint(source, path="benchmarks/bench_silent.py")
        assert codes(findings) == ["REP005"]
        assert findings[0].location.line == 1

    def test_bench_using_runner_fixture_is_clean(self):
        source = (
            "def test_bench_thing(run_experiment):\n"
            "    run_experiment('x', lambda: None)\n"
        )
        findings, _ = lint(source, path="benchmarks/bench_ok.py")
        assert findings == []

    def test_bench_calling_writer_is_clean(self):
        source = (
            "from repro.experiments.reporting import write_perf_point\n"
            "def test_bench_thing():\n"
            "    write_perf_point('out.json', name='x', value=1.0)\n"
        )
        findings, _ = lint(source, path="benchmarks/bench_ok.py")
        assert findings == []

    def test_non_bench_files_are_out_of_scope(self):
        source = "def helper():\n    pass\n"
        findings, _ = lint(source, path="benchmarks/conftest.py")
        assert findings == []


# --------------------------------------------------------------------------- #
# Suppressions and malformed input
# --------------------------------------------------------------------------- #


class TestSuppressions:
    FLAGGED = "import numpy as np\nrng = np.random.default_rng()"

    def test_justified_suppression_silences_and_counts(self):
        source = (
            self.FLAGGED
            + "  # repro: noqa REP001 -- interactive helper, seeding is the caller's job\n"
        )
        findings, suppressed = lint(source)
        assert findings == []
        assert suppressed == 1

    def test_bare_suppression_is_rep000_and_does_not_suppress(self):
        source = self.FLAGGED + "  # repro: noqa REP001\n"
        findings, suppressed = lint(source)
        assert sorted(codes(findings)) == ["REP000", "REP001"]
        assert suppressed == 0

    def test_wrong_code_suppression_does_not_silence(self):
        source = self.FLAGGED + "  # repro: noqa REP003 -- not actually a cache\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP001"]

    def test_multi_code_suppression(self):
        source = (
            self.FLAGGED + "  # repro: noqa REP001, REP004 -- corpus fixture\n"
        )
        findings, suppressed = lint(source)
        assert findings == []
        assert suppressed == 1

    def test_noqa_inside_string_literal_is_ignored(self):
        source = 'EXAMPLE = "# repro: noqa REP001"\n'
        findings, suppressed = lint(source)
        assert findings == []
        assert suppressed == 0
        assert find_suppressions(source) == []

    def test_syntax_error_is_rep000(self):
        findings, _ = lint("def broken(:\n")
        assert codes(findings) == ["REP000"]

    def test_select_rules_rejects_unknown_codes(self):
        with pytest.raises(ValueError):
            select_rules(["REP999"])
        assert [r.code for r in select_rules(["REP001"])] == ["REP001"]

    def test_normalize_path_is_posix_relative(self):
        import os

        assert normalize_path(os.path.join(os.getcwd(), "src", "x.py")) == "src/x.py"


# --------------------------------------------------------------------------- #
# REP106 — no time.sleep in library code
# --------------------------------------------------------------------------- #


class TestRep106Sleep:
    def test_time_sleep_is_flagged(self):
        source = "import time\ndef wait():\n    time.sleep(0.5)\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP106"]
        assert findings[0].location.line == 3

    def test_aliased_module_import_is_flagged(self):
        source = "import time as t\nt.sleep(1)\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP106"]

    def test_from_import_alias_is_flagged(self):
        source = "from time import sleep as snooze\nsnooze(2)\n"
        findings, _ = lint(source)
        assert codes(findings) == ["REP106"]

    def test_queue_latency_guarded_sleep_is_clean(self):
        source = (
            "import time\n"
            "class Backend:\n"
            "    def _queue_wait(self):\n"
            "        if not self.simulate_queue_latency:\n"
            "            return\n"
            "        time.sleep(self._queue_delay())\n"
        )
        findings, _ = lint(source)
        assert findings == []

    def test_unguarded_sleep_elsewhere_in_guarded_file_still_flags(self):
        source = (
            "import time\n"
            "def _queue_wait(simulate_queue_latency):\n"
            "    if simulate_queue_latency:\n"
            "        time.sleep(0.1)\n"
            "def retry():\n"
            "    time.sleep(1)\n"
        )
        findings, _ = lint(source)
        assert codes(findings) == ["REP106"]
        assert findings[0].location.line == 6

    def test_non_library_code_is_exempt(self):
        source = "import time\ntime.sleep(1)\n"
        findings, _ = lint(source, path="tests/test_example.py")
        assert findings == []

    def test_other_sleep_attributes_are_clean(self):
        # Only the ``time`` module's sleep counts — e.g. a driver object's
        # ``.sleep()`` power state call is not a stall.
        source = "def park(driver):\n    driver.sleep()\n"
        findings, _ = lint(source)
        assert findings == []


# --------------------------------------------------------------------------- #
# Suppressions on multi-line statements
# --------------------------------------------------------------------------- #


class TestMultiLineSuppressions:
    """A noqa anywhere on a wrapped statement covers the whole statement.

    Diagnostics anchor at a statement's *first* line, but a formatter is
    free to push the trailing comment onto the closing-paren line — the
    suppression must still land.  Regression for the old per-line index.
    """

    WRAPPED = (
        "import numpy as np\n"
        "def helper():\n"
        "    rng = np.random.default_rng(\n"
        "        None,\n"
        "    )  # repro: noqa REP001 -- interactive helper, caller seeds\n"
        "    return rng\n"
    )

    def test_noqa_on_closing_line_suppresses(self):
        findings, suppressed = lint(self.WRAPPED)
        assert findings == []
        assert suppressed == 1

    def test_noqa_on_first_line_still_works(self):
        source = (
            "import numpy as np\n"
            "def helper():\n"
            "    rng = np.random.default_rng(  # repro: noqa REP001 -- caller seeds\n"
            "        None,\n"
            "    )\n"
            "    return rng\n"
        )
        findings, suppressed = lint(source)
        assert findings == []
        assert suppressed == 1

    def test_without_noqa_the_wrapped_call_still_flags(self):
        source = self.WRAPPED.replace(
            "  # repro: noqa REP001 -- interactive helper, caller seeds", ""
        )
        findings, _ = lint(source)
        assert codes(findings) == ["REP001"]
        assert findings[0].location.line == 3

    def test_bare_noqa_on_wrapped_statement_is_still_rep000(self):
        source = self.WRAPPED.replace(" -- interactive helper, caller seeds", "")
        findings, suppressed = lint(source)
        assert sorted(codes(findings)) == ["REP000", "REP001"]
        assert suppressed == 0

    def test_body_noqa_does_not_blanket_the_enclosing_def(self):
        # The extent of a compound statement is its *header* only — a
        # justified noqa inside a function body must not swallow findings
        # on sibling lines.
        source = (
            "import numpy as np\n"
            "def helper():\n"
            "    a = np.random.default_rng(None)  # repro: noqa REP001 -- fixture\n"
            "    b = np.random.default_rng(None)\n"
            "    return a, b\n"
        )
        findings, suppressed = lint(source)
        assert codes(findings) == ["REP001"]
        assert findings[0].location.line == 4
        assert suppressed == 1
