"""Tests for the array-API seam lint rules (REP201/REP202).

Same corpus style as ``test_lint.py``: small in-memory sources under
crafted virtual paths, exact codes and line numbers asserted.  The
positive cases mirror the real pre-seam spellings that PR 8 rewired
(literal ``dtype=complex`` buffers, direct ``np.einsum`` in the batched
engines, bare ``generator.multinomial`` at the sampling boundary).
"""

from repro.analysis.lint import lint_source
from repro.analysis.rules import select_rules

ENGINE = "src/repro/quantum/batched.py"
LIBRARY = "src/repro/core/swap_test.py"


def lint(source, path, *codes):
    findings, _ = lint_source(source, path, select_rules(codes or None))
    return [(d.code, d.location.line) for d in findings]


class TestRep201ComplexDtypeLiterals:
    def test_dtype_keyword_builtin_complex(self):
        source = (
            "import numpy as np\n"
            "def make_state(n):\n"
            "    return np.zeros(2**n, dtype=complex)\n"
        )
        assert lint(source, LIBRARY, "REP201") == [("REP201", 3)]

    def test_dtype_keyword_np_complex128(self):
        source = (
            "import numpy as np\n"
            "GATE = np.eye(2, dtype=np.complex128)\n"
        )
        assert lint(source, LIBRARY, "REP201") == [("REP201", 2)]

    def test_astype_cast(self):
        source = (
            "import numpy as np\n"
            "def lift(matrix):\n"
            "    return np.asarray(matrix).astype(np.complex64)\n"
        )
        assert lint(source, LIBRARY, "REP201") == [("REP201", 3)]

    def test_seam_package_is_exempt(self):
        source = (
            "import numpy as np\n"
            "COMPLEX_DTYPE = np.dtype(np.complex128)\n"
            "def zeros(shape):\n"
            "    return np.zeros(shape, dtype=np.complex128)\n"
        )
        assert lint(source, "src/repro/arrays/__init__.py", "REP201") == []

    def test_canonical_constant_is_clean(self):
        source = (
            "import numpy as np\n"
            "from repro.arrays import COMPLEX_DTYPE\n"
            "GATE = np.eye(2, dtype=COMPLEX_DTYPE)\n"
        )
        assert lint(source, LIBRARY, "REP201") == []

    def test_real_dtype_literal_is_clean(self):
        source = (
            "import numpy as np\n"
            "readout = np.zeros((4, 2), dtype=np.float64)\n"
        )
        assert lint(source, LIBRARY, "REP201") == []

    def test_tests_and_benchmarks_are_exempt(self):
        source = (
            "import numpy as np\n"
            "expected = np.zeros(4, dtype=complex)\n"
        )
        assert lint(source, "tests/quantum/test_example.py", "REP201") == []
        assert lint(source, "benchmarks/bench_example.py", "REP201") == []


class TestRep202EngineKernelSeam:
    def test_direct_np_einsum_in_engine(self):
        source = (
            "import numpy as np\n"
            "def apply(states, matrix):\n"
            "    return np.einsum('ij,bj->bi', matrix, states)\n"
        )
        assert lint(source, ENGINE, "REP202") == [("REP202", 3)]

    def test_direct_np_linalg_in_engine(self):
        source = (
            "import numpy as np\n"
            "def norms(states):\n"
            "    return np.linalg.norm(states, axis=1)\n"
        )
        assert lint(source, ENGINE, "REP202") == [("REP202", 3)]

    def test_bare_generator_multinomial(self):
        source = (
            "def sample(generator, shots, pvals):\n"
            "    return generator.multinomial(shots, pvals)\n"
        )
        assert lint(source, "src/repro/quantum/measurement.py", "REP202") == [
            ("REP202", 2)
        ]

    def test_seam_calls_are_clean(self):
        source = (
            "import numpy as np\n"
            "from repro import arrays\n"
            "def apply(states, matrix, generator, shots, pvals):\n"
            "    moved = arrays.einsum('ij,bj->bi', arrays.as_complex(matrix), states)\n"
            "    norms = arrays.norm(moved, axis=1)\n"
            "    counts = arrays.multinomial(generator, shots, pvals)\n"
            "    return moved, norms, counts\n"
        )
        assert lint(source, ENGINE, "REP202") == []

    def test_structural_np_helpers_are_clean(self):
        source = (
            "import numpy as np\n"
            "def shuffle(states, perm):\n"
            "    flat = np.asarray(states)\n"
            "    moved = np.moveaxis(flat.reshape(2, 2, -1), 0, 1)\n"
            "    return np.clip(np.abs(moved), 0.0, 1.0)\n"
        )
        assert lint(source, ENGINE, "REP202") == []

    def test_non_engine_library_module_is_exempt(self):
        source = (
            "import numpy as np\n"
            "def overlap(a, b):\n"
            "    return np.vdot(a, b)\n"
        )
        assert lint(source, "src/repro/core/fidelity_math.py", "REP202") == []

    def test_every_engine_module_is_covered(self):
        source = (
            "import numpy as np\n"
            "x = np.matmul(np.eye(2), np.eye(2))\n"
        )
        from repro.analysis.rules.arrays import ArraySeamRule

        for suffix in ArraySeamRule.ENGINE_MODULES:
            assert lint(source, f"src/repro/{suffix}", "REP202") == [
                ("REP202", 2)
            ], suffix

    def test_suppression_with_justification_is_honoured(self):
        source = (
            "import numpy as np\n"
            "def raw(states):\n"
            "    return np.einsum('bi->b', states)  "
            "# repro: noqa REP202 -- measured: wrapper overhead dominates here\n"
        )
        findings, suppressed = lint_source(
            source, ENGINE, select_rules(["REP202"])
        )
        assert findings == []
        assert suppressed == 1
