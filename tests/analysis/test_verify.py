"""Malformed-IR corpus for the static verifier (:mod:`repro.analysis.verify`).

Every fixture here is a *hand-built* program/circuit/plan — the
:class:`SweepProgram` constructor is used directly so the corpus can encode
defects :meth:`SweepProgram.compile` (which runs the verifier) would refuse
to produce.  Each test asserts the exact diagnostic code and location the
verifier must emit for that defect.
"""

import numpy as np
import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.verify import (
    full_verification_enabled,
    verify_channel,
    verify_circuit,
    verify_program,
    verify_superoperator,
    verify_tile_plan,
)
from repro.exceptions import SimulationError
from repro.quantum.batched_density import conjugation_superoperator
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import HADAMARD, I2
from repro.quantum.program import GateStep, SweepProgram, TilePlan


def make_program(
    *,
    steps,
    num_qubits=3,
    num_clbits=1,
    measured_qubits=(0,),
    clbits=(0,),
    num_columns=0,
    name="corpus",
):
    """Hand-built program, bypassing compile() and therefore the verifier."""
    return SweepProgram(
        num_qubits=num_qubits,
        num_clbits=num_clbits,
        steps=steps,
        measured_qubits=measured_qubits,
        clbits=clbits,
        num_columns=num_columns,
        parameters=(),
        column_sites=(),
        name=name,
    )


def fixed_step(name="h", qubits=(0,), matrix=HADAMARD):
    return GateStep(name=name, qubits=qubits, slots=(), matrix=matrix)


def parametric_step(column, qubits=(1,), coeff=1.0):
    return GateStep(
        name="ry", qubits=qubits, slots=(("column", column, coeff),), matrix=None
    )


def codes(diagnostics):
    return [d.code for d in diagnostics]


# --------------------------------------------------------------------------- #
# VER101 / VER102 / VER103 — bind sites vs bindings
# --------------------------------------------------------------------------- #


class TestBindSiteChecks:
    def test_out_of_range_bind_column_is_ver101(self):
        program = make_program(steps=[parametric_step(column=5)], num_columns=2)
        findings = verify_program(program, level="cheap")
        ver101 = [d for d in findings if d.code == "VER101"]
        assert len(ver101) == 1
        assert "column 5" in ver101[0].message
        assert "step 0 (ry)" in ver101[0].location.render()

    def test_negative_bind_column_is_ver101(self):
        program = make_program(steps=[parametric_step(column=-1)], num_columns=2)
        assert "VER101" in codes(verify_program(program, level="cheap"))

    def test_uncovered_parametric_site_is_ver102(self):
        program = make_program(
            steps=[parametric_step(column=0), parametric_step(column=2, qubits=(2,))],
            num_columns=3,
        )
        bindings = np.zeros((4, 2))  # column 2 missing
        findings = verify_program(program, bindings=bindings, level="cheap")
        ver102 = [d for d in findings if d.code == "VER102"]
        assert len(ver102) == 1
        assert "[2]" in ver102[0].message

    def test_bindings_width_mismatch_is_ver102(self):
        program = make_program(steps=[parametric_step(column=0)], num_columns=1)
        findings = verify_program(program, bindings=np.zeros((2, 4)), level="cheap")
        assert "VER102" in codes(findings)

    def test_non_2d_bindings_is_ver102(self):
        program = make_program(steps=[parametric_step(column=0)], num_columns=1)
        findings = verify_program(program, bindings=np.zeros(3), level="cheap")
        assert "VER102" in codes(findings)

    def test_unread_column_is_ver103_warning(self):
        program = make_program(steps=[parametric_step(column=0)], num_columns=2)
        findings = verify_program(program, level="cheap")
        ver103 = [d for d in findings if d.code == "VER103"]
        assert len(ver103) == 1
        assert ver103[0].severity is Severity.WARNING

    def test_matching_bindings_are_clean(self):
        program = make_program(
            steps=[fixed_step(), parametric_step(column=0)], num_columns=1
        )
        assert verify_program(program, bindings=np.zeros((3, 1))) == []


# --------------------------------------------------------------------------- #
# VER110 / VER111 / VER120 / VER121 — steps and read-out
# --------------------------------------------------------------------------- #


class TestStepChecks:
    def test_qubit_out_of_register_is_ver110(self):
        program = make_program(steps=[fixed_step(qubits=(7,))])
        findings = verify_program(program, level="cheap")
        assert "VER110" in codes(findings)

    def test_duplicate_qubit_is_ver110(self):
        cx = np.eye(4)
        program = make_program(steps=[fixed_step(name="cx", qubits=(1, 1), matrix=cx)])
        assert "VER110" in codes(verify_program(program, level="cheap"))

    def test_measured_qubit_out_of_register_is_ver111(self):
        program = make_program(steps=[fixed_step()], measured_qubits=(9,))
        assert "VER111" in codes(verify_program(program, level="cheap"))

    def test_clbit_count_mismatch_is_ver111(self):
        program = make_program(
            steps=[fixed_step()], measured_qubits=(0, 1), clbits=(0,), num_clbits=2
        )
        assert "VER111" in codes(verify_program(program, level="cheap"))

    def test_non_unitary_fixed_matrix_is_ver120_at_full_level(self):
        bad = np.array([[1.0, 0.0], [0.0, 2.0]], dtype=complex)
        program = make_program(steps=[fixed_step(matrix=bad)])
        assert verify_program(program, level="cheap") == []  # numeric check is full-only
        findings = verify_program(program, level="full")
        ver120 = [d for d in findings if d.code == "VER120"]
        assert len(ver120) == 1
        assert "not unitary" in ver120[0].message

    def test_wrong_shape_fixed_matrix_is_ver120(self):
        program = make_program(
            steps=[fixed_step(name="cx", qubits=(0, 1), matrix=HADAMARD)]
        )
        assert "VER120" in codes(verify_program(program, level="full"))

    def test_fixed_step_reading_columns_is_ver121(self):
        step = GateStep(
            name="ry", qubits=(0,), slots=(("column", 0, 1.0),), matrix=HADAMARD
        )
        program = make_program(steps=[step], num_columns=1)
        assert "VER121" in codes(verify_program(program, level="cheap"))

    def test_parametric_step_without_columns_is_ver121(self):
        step = GateStep(name="ry", qubits=(0,), slots=(("value", 0.5),), matrix=None)
        program = make_program(steps=[step])
        assert "VER121" in codes(verify_program(program, level="cheap"))


# --------------------------------------------------------------------------- #
# VER130 / VER131 — channels and superoperators
# --------------------------------------------------------------------------- #


class TestChannelChecks:
    def test_valid_unitary_superoperator_is_clean(self):
        superop = conjugation_superoperator(HADAMARD)
        assert verify_superoperator(superop, 1) == []

    def test_incomplete_kraus_superoperator_is_ver130(self):
        # A single damped Kraus operator: sum K^dag K = 0.25 I != I.
        superop = conjugation_superoperator(0.5 * I2)
        findings = verify_superoperator(superop, 1)
        assert codes(findings) == ["VER130"]
        assert "trace preserving" in findings[0].message

    def test_transpose_map_is_ver131_not_cp(self):
        # The transpose map: TP (trace row is the identity) but famously not
        # CP — its Choi matrix is the SWAP operator, eigenvalue -1.
        dim = 2
        transpose_map = np.zeros((4, 4), dtype=complex)
        for r in range(dim):
            for rp in range(dim):
                for c in range(dim):
                    for cp in range(dim):
                        transpose_map[r * dim + rp, c * dim + cp] = float(
                            (r, rp) == (cp, c)
                        )
        findings = verify_superoperator(transpose_map, 1)
        assert codes(findings) == ["VER131"]
        assert "completely positive" in findings[0].message

    def test_wrong_shape_superoperator_is_ver130(self):
        assert codes(verify_superoperator(np.eye(3), 1)) == ["VER130"]

    def test_valid_kraus_channel_is_clean(self):
        from repro.quantum.noise import depolarizing_kraus

        assert verify_channel(depolarizing_kraus(0.1, 1)) == []

    def test_incomplete_kraus_channel_is_ver130(self):
        findings = verify_channel([0.5 * I2], name="damped identity")
        assert codes(findings) == ["VER130"]
        assert findings[0].location.render() == "damped identity"

    def test_mismatched_kraus_dimensions_is_ver130(self):
        assert codes(verify_channel([I2, np.eye(4)])) == ["VER130"]

    def test_empty_channel_is_ver130(self):
        assert codes(verify_channel([])) == ["VER130"]

    def test_non_cptp_noise_model_composition_is_flagged(self):
        """A full-level program check catches a bad channel smuggled past add_*."""
        from repro.quantum.noise import NoiseModel

        model = NoiseModel()
        # Bypass the mutation-time guard the way a pickled/patched model could.
        model._default_errors.setdefault(1, []).append([0.5 * I2])
        model._version += 1
        program = make_program(steps=[fixed_step()])
        findings = verify_program(program, noise_model=model, level="full")
        assert "VER130" in codes(findings)


# --------------------------------------------------------------------------- #
# VER140 / VER141 — tile plans
# --------------------------------------------------------------------------- #


class _GappyPlan(TilePlan):
    """Tile enumeration that skips one grid element (an under-covering plan)."""

    def flat_tiles(self):
        yield 0, 2
        yield 3, self.rows * self.samples  # element 2 never executed


class _OverlappingPlan(TilePlan):
    """Tile enumeration that executes one grid element twice."""

    def flat_tiles(self):
        yield 0, 3
        yield 2, self.rows * self.samples


class _ShortPlan(TilePlan):
    """Tile enumeration that stops before the end of the grid."""

    def flat_tiles(self):
        yield 0, self.rows * self.samples - 1


class TestTilePlanChecks:
    def test_derived_plans_partition_exactly(self):
        for rows, samples in [(1, 1), (3, 4), (10, 7), (2, 100)]:
            plan = TilePlan.for_circuit_sweep(
                rows, samples, element_amplitudes=8, max_amplitudes=64
            )
            assert verify_tile_plan(plan) == []

    def test_gap_is_ver140(self):
        plan = _GappyPlan(rows=2, samples=3, row_tile=1, sample_tile=3)
        findings = verify_tile_plan(plan)
        assert codes(findings) == ["VER140"]
        assert "skips" in findings[0].message

    def test_overlap_is_ver140(self):
        plan = _OverlappingPlan(rows=2, samples=3, row_tile=1, sample_tile=3)
        findings = verify_tile_plan(plan)
        assert codes(findings) == ["VER140"]
        assert "overlaps" in findings[0].message

    def test_under_coverage_is_ver140(self):
        plan = _ShortPlan(rows=2, samples=3, row_tile=1, sample_tile=3)
        findings = verify_tile_plan(plan)
        assert codes(findings) == ["VER140"]
        assert "cover 5 element(s) of a 6-element grid" in findings[0].message

    def test_declared_grid_mismatch_is_ver140(self):
        plan = TilePlan(rows=2, samples=3, row_tile=2, sample_tile=3)
        findings = verify_tile_plan(plan, expected_rows=4, expected_samples=5)
        assert codes(findings).count("VER140") >= 2

    def test_over_budget_tile_is_ver141_warning(self):
        plan = TilePlan(rows=4, samples=4, row_tile=4, sample_tile=4, max_amplitudes=8)
        findings = verify_tile_plan(plan, element_amplitudes=8)
        ver141 = [d for d in findings if d.code == "VER141"]
        assert len(ver141) == 1
        assert ver141[0].severity is Severity.WARNING

    def test_plan_bindings_row_mismatch_is_ver140(self):
        program = make_program(
            steps=[fixed_step(), parametric_step(column=0)], num_columns=1
        )
        plan = TilePlan.for_circuit_sweep(3, 2, element_amplitudes=8, max_amplitudes=64)
        findings = verify_program(
            program, bindings=np.zeros((4, 1)), tile_plan=plan, level="cheap"
        )
        ver140 = [d for d in findings if d.code == "VER140"]
        assert len(ver140) == 1
        assert "6 grid element(s)" in ver140[0].message


# --------------------------------------------------------------------------- #
# VER150 — deferred measurement, as structured diagnostics
# --------------------------------------------------------------------------- #


class TestCircuitChecks:
    def test_clean_circuit_yields_nothing(self):
        qc = QuantumCircuit(2, 1, name="ok")
        qc.h(0).cx(0, 1)
        qc.measure(0, 0)
        assert verify_circuit(qc) == []

    def test_mid_circuit_measurement_is_ver150(self):
        qc = QuantumCircuit(2, 2, name="midmeas")
        qc.h(0)
        qc.measure(0, 0)
        qc.h(0)  # operates on a measured qubit
        findings = verify_circuit(qc)
        assert codes(findings) == ["VER150"]
        assert "already-measured" in findings[0].message
        assert "instruction 2 (h)" in findings[0].location.render()

    def test_double_measurement_is_ver150(self):
        qc = QuantumCircuit(1, 2, name="twice")
        qc.measure(0, 0)
        qc.measure(0, 1)
        findings = verify_circuit(qc)
        assert codes(findings) == ["VER150"]
        assert "measured more than once" in findings[0].message

    def test_every_violation_reported_not_just_first(self):
        qc = QuantumCircuit(2, 2, name="multi")
        qc.measure(0, 0)
        qc.h(0)
        qc.h(0)
        assert codes(verify_circuit(qc)) == ["VER150", "VER150"]

    def test_compile_rejects_program_level_defects(self):
        """The compile() hook aborts on what the verifier flags."""
        qc = QuantumCircuit(2, 2, name="midmeas")
        qc.h(0)
        qc.measure(0, 0)
        qc.h(0)
        with pytest.raises(SimulationError):
            SweepProgram.compile(qc, bind_floats=True)


# --------------------------------------------------------------------------- #
# The figure suite verifies clean
# --------------------------------------------------------------------------- #


class TestReferenceSuite:
    def test_reference_suite_is_clean(self):
        from repro.analysis.verify import verify_reference_suite

        findings = verify_reference_suite()
        assert findings == [], "\n".join(d.format() for d in findings)

    def test_env_flag_parsing(self, monkeypatch):
        for value, expected in [
            ("1", True),
            ("true", True),
            ("YES", True),
            (" on ", True),
            ("0", False),
            ("", False),
            ("off", False),
        ]:
            monkeypatch.setenv("REPRO_VERIFY", value)
            assert full_verification_enabled() is expected
        monkeypatch.delenv("REPRO_VERIFY")
        assert full_verification_enabled() is False
