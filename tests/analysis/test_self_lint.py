"""Tier-1 gate: the shipped tree itself must lint clean.

This is the enforcement point of the REP001–REP005 contracts: any
non-suppressed finding over ``src/`` or ``benchmarks/`` fails the suite, so
a contract violation cannot merge silently.  Suppressions are allowed but
must carry a justification (the linter turns bare ones into REP000 errors,
which fail here too).
"""

import os

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.lint import lint_paths
from repro.analysis.rules import all_rules

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def run_lint(*paths):
    return lint_paths(
        [os.path.join(REPO_ROOT, p) for p in paths], all_rules(), root=REPO_ROOT
    )


class TestSelfLint:
    def test_src_has_no_findings(self):
        result = run_lint("src")
        assert result.files_checked > 50  # the sweep actually covered the tree
        assert result.diagnostics == [], "\n".join(
            d.format() for d in result.diagnostics
        )

    def test_benchmarks_have_no_findings(self):
        result = run_lint("benchmarks")
        assert result.files_checked >= 18
        assert result.diagnostics == [], "\n".join(
            d.format() for d in result.diagnostics
        )

    def test_every_benchmark_is_covered_by_rep005(self):
        """REP005 applies to each bench_*.py — the rule can't be dodged by name."""
        from repro.analysis.rules.reporting import BenchReportingRule
        from repro.analysis.rules import LintContext

        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        bench_files = sorted(
            name for name in os.listdir(bench_dir) if name.startswith("bench_")
        )
        assert len(bench_files) >= 18
        rule = BenchReportingRule()
        for name in bench_files:
            context = LintContext(
                path=os.path.join("benchmarks", name), source="", tree=None
            )
            assert rule.applies(context), name

    def test_no_error_severity_anywhere(self):
        result = run_lint("src", "benchmarks")
        errors = [d for d in result.diagnostics if d.severity is Severity.ERROR]
        assert errors == []
