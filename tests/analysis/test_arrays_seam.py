"""Tests for the :mod:`repro.arrays` seam and its precision contract.

Unit layer: the precision knob, the configured-dtype accessors, the
no-copy guarantee in double mode, and the float64 sampling upcast.
End-to-end layer (``TestSinglePrecisionEndToEnd``): the documented
tolerance from ``docs/array_backend.md`` — a single-precision run of the
Iris reference sweeps (analytic discriminator fidelities, and a noisy
density sweep through a compiled ``SweepProgram``) matches the
double-precision reference within ``arrays.sweep_atol()`` = 5e-4.
"""

import numpy as np
import pytest

from repro import arrays
from repro.core.circuit_builder import DiscriminatorCircuitBuilder
from repro.core.layers import LayerStack
from repro.core.swap_test import AnalyticFidelityEstimator
from repro.encoding import DualAngleEncoder
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.program import (
    DensitySuperoperatorEngine,
    StatevectorEngine,
    SweepProgram,
)


@pytest.fixture(autouse=True)
def restore_precision():
    before = arrays.get_precision()
    yield
    arrays.set_precision(before)


class TestPrecisionKnob:
    def test_default_is_double(self):
        assert arrays.get_precision() == "double"
        assert arrays.complex_dtype() == np.complex128
        assert arrays.real_dtype() == np.float64
        assert arrays.complex_itemsize() == 16
        assert arrays.sweep_atol() == 0.0

    def test_single_mode_flips_every_accessor(self):
        arrays.set_precision("single")
        assert arrays.complex_dtype() == np.complex64
        assert arrays.real_dtype() == np.float32
        assert arrays.complex_itemsize() == 8
        assert arrays.state_atol() == pytest.approx(1e-4)
        assert arrays.sweep_atol() == pytest.approx(5e-4)

    def test_context_manager_restores(self):
        with arrays.precision("single"):
            assert arrays.get_precision() == "single"
        assert arrays.get_precision() == "double"

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with arrays.precision("single"):
                raise RuntimeError("boom")
        assert arrays.get_precision() == "double"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            arrays.set_precision("half")

    def test_canonical_constants_ignore_the_knob(self):
        arrays.set_precision("single")
        assert arrays.COMPLEX_DTYPE == np.complex128
        assert arrays.REAL_DTYPE == np.float64


class TestAllocationAndCasts:
    def test_zeros_and_eye_follow_configured_dtype(self):
        assert arrays.zeros((2, 4)).dtype == np.complex128
        assert arrays.eye(4).dtype == np.complex128
        with arrays.precision("single"):
            assert arrays.zeros((2, 4)).dtype == np.complex64
            assert arrays.eye(4).dtype == np.complex64

    def test_as_complex_is_no_copy_at_matching_dtype(self):
        state = np.zeros(8, dtype=np.complex128)
        assert arrays.as_complex(state) is state

    def test_as_complex_downcasts_under_single(self):
        state = np.zeros(8, dtype=np.complex128)
        with arrays.precision("single"):
            cast = arrays.as_complex(state)
        assert cast.dtype == np.complex64
        assert cast is not state

    def test_as_real_follows_knob(self):
        values = np.linspace(0.0, 1.0, 5)
        assert arrays.as_real(values).dtype == np.float64
        with arrays.precision("single"):
            assert arrays.as_real(values).dtype == np.float32


class TestKernelWrappers:
    def test_wrappers_match_numpy_in_double(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        np.testing.assert_array_equal(arrays.matmul(a, b), np.matmul(a, b))
        np.testing.assert_array_equal(arrays.kron(a, b), np.kron(a, b))
        np.testing.assert_array_equal(
            arrays.einsum("ij,jk->ik", a, b), np.einsum("ij,jk->ik", a, b)
        )
        assert arrays.vdot(a[0], b[0]) == np.vdot(a[0], b[0])
        assert arrays.trace(a) == np.trace(a)
        assert arrays.norm(a[0]) == np.linalg.norm(a[0])

    def test_multinomial_upcasts_float32_pvals(self):
        # numpy validates pvals in double; a float32 vector whose sum
        # rounds above 1.0 raises.  The seam owns the upcast so sampling
        # is insensitive to the precision knob.
        pvals = np.full(10, 0.1, dtype=np.float32)
        counts = arrays.multinomial(np.random.default_rng(3), 1000, pvals)
        assert counts.sum() == 1000
        reference = np.random.default_rng(3).multinomial(
            1000, pvals.astype(np.float64)
        )
        np.testing.assert_array_equal(counts, reference)


def make_builder(num_features=4, architecture="s"):
    encoder = DualAngleEncoder()
    stack = LayerStack.from_architecture(
        architecture, encoder.num_qubits(num_features)
    )
    return DiscriminatorCircuitBuilder(stack, encoder, num_features)


def sweep_circuit(angles):
    qc = QuantumCircuit(3, 1)
    qc.h(0)
    qc.ry(angles[0], 1)
    qc.rz(angles[1], 1)
    qc.ry(angles[2], 2)
    qc.rz(angles[3], 2)
    qc.cswap(0, 1, 2)
    qc.h(0)
    qc.measure(0, 0)
    return qc


class TestSinglePrecisionEndToEnd:
    """The documented complex64-vs-complex128 tolerance on Iris sweeps."""

    def _analytic_fidelities(self):
        builder = make_builder()
        parameters = np.random.default_rng(1).uniform(
            0.0, np.pi, builder.num_parameters
        )
        samples = np.random.default_rng(2).uniform(0.05, 0.95, (6, 4))
        return AnalyticFidelityEstimator(builder).fidelities(parameters, samples)

    def test_analytic_iris_sweep_within_documented_atol(self):
        reference = self._analytic_fidelities()
        with arrays.precision("single"):
            single = self._analytic_fidelities()
            atol = arrays.sweep_atol()
        assert single.shape == reference.shape
        np.testing.assert_allclose(single, reference, atol=atol, rtol=0.0)

    def _noisy_zero_probabilities(self):
        rng = np.random.default_rng(11)
        bindings = rng.uniform(0.0, np.pi, (5, 4))
        program = SweepProgram.compile(
            sweep_circuit(bindings[0]), bind_floats=True, name="noisy-sweep"
        )
        noise = NoiseModel.from_error_rates(0.01, 0.02, readout_error=0.03)
        engine = DensitySuperoperatorEngine(noise)
        return program.execute(bindings, engine)

    def test_noisy_density_sweep_within_documented_atol(self):
        reference = self._noisy_zero_probabilities()
        with arrays.precision("single"):
            single = self._noisy_zero_probabilities()
            atol = arrays.sweep_atol()
        assert single.shape == reference.shape
        np.testing.assert_allclose(single, reference, atol=atol, rtol=0.0)

    def test_double_mode_is_bit_identical_across_calls(self):
        # sweep_atol() == 0.0 in double is a real promise: the default
        # mode is the seed behaviour, not merely close to it.
        first = self._noisy_zero_probabilities()
        second = self._noisy_zero_probabilities()
        np.testing.assert_array_equal(first, second)

    def test_single_mode_states_are_actually_complex64(self):
        program = SweepProgram.compile(
            sweep_circuit(np.full(4, 0.3)), bind_floats=True, name="dtype-probe"
        )
        bindings = np.full((2, 4), 0.3)
        with arrays.precision("single"):
            state = program.evolve(bindings, StatevectorEngine())
        assert state.amplitudes.dtype == np.complex64
