"""Tests for ``python -m repro.analysis`` (:mod:`repro.analysis.cli`)."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.cli import main
from repro.analysis.report import validate_findings_payload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


VIOLATION = "import numpy as np\nrng = np.random.default_rng()\n"


class TestMainInProcess:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "src/ok.py", "X = 1\n")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_findings_exit_one_with_locations(self, tmp_path, capsys):
        target = write(tmp_path, "src/repro/bad.py", VIOLATION)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert ":2:" in out  # line anchor of the seedless call
        assert os.path.basename(target) in out

    def test_json_payload_is_schema_valid(self, tmp_path, capsys):
        write(tmp_path, "src/repro/bad.py", VIOLATION)
        exit_code = main([str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert validate_findings_payload(payload) == []
        assert payload["summary"]["errors"] == 1
        codes = [finding["code"] for finding in payload["findings"]]
        assert codes == ["REP001"]

    def test_select_restricts_rules(self, tmp_path, capsys):
        write(tmp_path, "src/repro/bad.py", VIOLATION)
        assert main([str(tmp_path), "--select", "REP005"]) == 0
        capsys.readouterr()

    def test_unknown_select_code_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--select", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_warning_only_findings_exit_zero(self, tmp_path, capsys):
        # Suppressed finding -> warning-free, error-free output, still counted.
        write(
            tmp_path,
            "src/repro/bad.py",
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: noqa REP001 -- CLI corpus\n",
        )
        assert main([str(tmp_path)]) == 0
        assert "1 suppressed" in capsys.readouterr().out


class TestModuleEntryPoint:
    def run_cli(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )

    def test_shipped_tree_is_clean(self):
        proc = self.run_cli("src", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_round_trip_over_shipped_tree(self):
        proc = self.run_cli("src", "benchmarks", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert validate_findings_payload(payload) == []
        assert payload["tool"] == "repro.analysis"
        assert payload["files_checked"] > 50
        assert payload["summary"]["errors"] == 0
