"""Tests for ``python -m repro.analysis`` (:mod:`repro.analysis.cli`)."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.cli import main
from repro.analysis.report import validate_findings_payload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


VIOLATION = "import numpy as np\nrng = np.random.default_rng()\n"


class TestMainInProcess:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "src/ok.py", "X = 1\n")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_findings_exit_one_with_locations(self, tmp_path, capsys):
        target = write(tmp_path, "src/repro/bad.py", VIOLATION)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert ":2:" in out  # line anchor of the seedless call
        assert os.path.basename(target) in out

    def test_json_payload_is_schema_valid(self, tmp_path, capsys):
        write(tmp_path, "src/repro/bad.py", VIOLATION)
        exit_code = main([str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert validate_findings_payload(payload) == []
        assert payload["summary"]["errors"] == 1
        codes = [finding["code"] for finding in payload["findings"]]
        assert codes == ["REP001"]

    def test_select_restricts_rules(self, tmp_path, capsys):
        write(tmp_path, "src/repro/bad.py", VIOLATION)
        assert main([str(tmp_path), "--select", "REP005"]) == 0
        capsys.readouterr()

    def test_unknown_select_code_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--select", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_warning_only_findings_exit_zero(self, tmp_path, capsys):
        # Suppressed finding -> warning-free, error-free output, still counted.
        write(
            tmp_path,
            "src/repro/bad.py",
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: noqa REP001 -- CLI corpus\n",
        )
        assert main([str(tmp_path)]) == 0
        assert "1 suppressed" in capsys.readouterr().out


class TestJobsFanOut:
    """Satellite: ``--jobs N`` shards the per-file passes deterministically."""

    def corpus(self, tmp_path):
        write(tmp_path, "src/repro/bad_a.py", VIOLATION)
        write(tmp_path, "src/repro/bad_b.py", VIOLATION)
        write(tmp_path, "src/repro/clean.py", "X = 1\n")
        write(tmp_path, "src/repro/bad_c.py", VIOLATION)
        return str(tmp_path)

    def test_jobs_output_is_identical_to_serial(self, tmp_path, capsys):
        target = self.corpus(tmp_path)
        assert main([target, "--format", "json"]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert main([target, "--format", "json", "--jobs", "4"]) == 1
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["findings"] == serial["findings"]
        assert sharded["summary"] == serial["summary"]
        assert sharded["timings"]["jobs"] == 4
        assert serial["timings"]["jobs"] == 1

    def test_timings_section_is_schema_valid(self, tmp_path, capsys):
        target = self.corpus(tmp_path)
        main([target, "--format", "json", "--jobs", "2"])
        payload = json.loads(capsys.readouterr().out)
        assert validate_findings_payload(payload) == []
        timings = payload["timings"]
        for key in ("lint_seconds", "flow_seconds", "shapes_seconds"):
            assert key in timings and timings[key] >= 0.0

    def test_invalid_jobs_is_usage_error(self, tmp_path, capsys):
        write(tmp_path, "src/ok.py", "X = 1\n")
        assert main([str(tmp_path), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestModuleEntryPoint:
    def run_cli(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )

    def test_shipped_tree_is_clean(self):
        proc = self.run_cli("src", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_round_trip_over_shipped_tree(self):
        proc = self.run_cli("src", "benchmarks", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert validate_findings_payload(payload) == []
        assert payload["tool"] == "repro.analysis"
        assert payload["files_checked"] > 50
        assert payload["summary"]["errors"] == 0


class TestSuppressionAccounting:
    """Satellite: per-code suppression counts survive the JSON round-trip."""

    FIXTURE = {
        # Lint-family suppression (REP001).
        "src/repro/seeded.py": (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: noqa REP001 -- corpus\n"
        ),
        # Flow-family suppression (REP101): shard-reachable shared write.
        "src/repro/sharded.py": (
            "counts = {}\n"
            "def worker(item):\n"
            "    counts[item] = 1  # repro: noqa REP101 -- corpus\n"
            "def run(executor, items):\n"
            "    executor.map(worker, items)\n"
        ),
    }

    def write_fixture(self, tmp_path):
        for name, source in self.FIXTURE.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return str(tmp_path)

    def run_cli(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )

    def test_both_families_counted_in_json_summary(self, tmp_path):
        proc = self.run_cli(self.write_fixture(tmp_path), "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert validate_findings_payload(payload) == []
        summary = payload["summary"]
        assert summary["suppressed_by_code"] == {"REP001": 1, "REP101": 1}
        assert summary["suppressed"] == 2
        assert payload["findings"] == []

    def test_select_narrows_the_accounting_to_that_family(self, tmp_path):
        target = self.write_fixture(tmp_path)
        proc = self.run_cli(target, "--select", "REP101", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        summary = json.loads(proc.stdout)["summary"]
        assert summary["suppressed_by_code"] == {"REP101": 1}
        assert summary["suppressed"] == 1

    def test_shipped_tree_accounts_its_own_suppressions(self):
        proc = self.run_cli("src", "benchmarks", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        by_code = payload["summary"]["suppressed_by_code"]
        # The executor/trainer/harness state the flow pass cannot prove safe
        # is suppressed inline with justifications, and every one is counted.
        assert by_code.get("REP101", 0) >= 10
        assert payload["summary"]["suppressed"] == sum(by_code.values())

    def test_verify_adds_schema_valid_cost_section(self):
        proc = self.run_cli("src", "--verify", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert validate_findings_payload(payload) == []
        cost = payload["cost"]
        assert len(cost) == 8
        engines = {entry["engine"] for entry in cost}
        assert engines == {"statevector", "density"}
        assert all(entry["peak_bytes"] > 0 for entry in cost)


SHAPE_VIOLATION = (
    "import numpy as np\n"
    "def f(a, b):\n"
    "    return np.einsum('ij,jk->ik', a)\n"
)


class TestShapeFamilyIntegration:
    """The VER3xx shape family rides the same CLI as lint and flow."""

    def test_shape_finding_surfaces_with_exit_one(self, tmp_path, capsys):
        write(tmp_path, "src/repro/quantum/batched.py", SHAPE_VIOLATION)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "VER301" in out

    def test_select_ver301_runs_only_the_shape_family(self, tmp_path, capsys):
        write(tmp_path, "src/repro/quantum/batched.py", SHAPE_VIOLATION)
        write(tmp_path, "src/repro/bad.py", VIOLATION)
        assert main([str(tmp_path), "--select", "VER301"]) == 1
        payload_codes = capsys.readouterr().out
        assert "VER301" in payload_codes
        assert "REP001" not in payload_codes

    def test_select_lint_code_skips_shape_family(self, tmp_path, capsys):
        write(tmp_path, "src/repro/quantum/batched.py", SHAPE_VIOLATION)
        assert main([str(tmp_path), "--select", "REP001"]) == 0
        capsys.readouterr()

    def test_shape_finding_in_sarif_catalogue(self, tmp_path, capsys):
        from repro.analysis.sarif import validate_sarif_payload

        write(tmp_path, "src/repro/quantum/batched.py", SHAPE_VIOLATION)
        assert main([str(tmp_path), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert validate_sarif_payload(payload) == []
        # The same fixture trips both families: the shape contract
        # (VER301) and the kernel-seam lint rule (REP202).
        rule_ids = {r["ruleId"] for r in payload["runs"][0]["results"]}
        assert rule_ids == {"VER301", "REP202"}

    def test_shape_suppressions_counted(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/repro/quantum/batched.py",
            SHAPE_VIOLATION.replace(
                ", a)",
                ", a)  # repro: noqa VER301, REP202 -- corpus fixture",
            ),
        )
        assert main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["suppressed_by_code"].get("VER301") == 1
