"""Tests for the shape/dtype abstract interpreter (VER301–VER304).

Three layers: the dtype lattice's promotion algebra, a malformed-kernel
corpus asserting each AST check fires with the exact code (and stays
silent on the sanctioned spellings), and the VER302 program-metadata
verifier over hand-broken compiled programs.  The tier-1 gate at the
bottom keeps ``src/`` + ``benchmarks/`` clean under the interpreter.
"""

import os

import numpy as np
import pytest

from repro.analysis.shapes import (
    ENGINE_MODULE_SUFFIXES,
    SHAPE_CODES,
    analyze_paths,
    analyze_source,
    analyze_sources,
    verify_program_shapes,
    verify_reference_shapes,
)
from repro.analysis.shapes.lattice import (
    BOOL,
    COMPLEX64,
    COMPLEX128,
    CONFIG_COMPLEX,
    CONFIG_REAL,
    FLOAT32,
    FLOAT64,
    INT64,
    WEAK_FLOAT,
    WEAK_INT,
    breaks_configured_run,
    promote,
    promote_all,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: A path the engine gate accepts — corpus modules pose as an engine file.
ENGINE_PATH = "src/repro/quantum/batched.py"


def codes_of(source, path=ENGINE_PATH):
    found, _ = analyze_source(source, path)
    return [(d.code, d.location.line) for d in found]


class TestDtypeLattice:
    """The promotion table the VER304 check is built on."""

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            # Same-kind widths take the max.
            (FLOAT32, FLOAT64, FLOAT64),
            (COMPLEX64, COMPLEX128, COMPLEX128),
            # Kind climbs bool < int < float < complex.
            (BOOL, FLOAT32, FLOAT32),
            (FLOAT64, COMPLEX64, COMPLEX128),
            (FLOAT32, COMPLEX64, COMPLEX64),
            # Integer arrays promote like hard 64-bit operands (numpy:
            # int64 + float32 -> float64).
            (INT64, FLOAT32, FLOAT64),
            (INT64, COMPLEX64, COMPLEX128),
            # Weak Python scalars adopt the array operand's width (NEP 50).
            (WEAK_INT, FLOAT32, FLOAT32),
            (WEAK_FLOAT, COMPLEX64, COMPLEX64),
            (WEAK_FLOAT, INT64, FLOAT64),
            # Configured widths stay configured against <= 32-bit company.
            (CONFIG_COMPLEX, CONFIG_COMPLEX, CONFIG_COMPLEX),
            (CONFIG_COMPLEX, FLOAT32, CONFIG_COMPLEX),
            (CONFIG_REAL, WEAK_FLOAT, CONFIG_REAL),
            (CONFIG_REAL, COMPLEX64, CONFIG_COMPLEX),
            # ... but a hard 64-bit operand pins the result wide.
            (CONFIG_COMPLEX, COMPLEX128, COMPLEX128),
            (CONFIG_COMPLEX, FLOAT64, COMPLEX128),
            (CONFIG_REAL, INT64, FLOAT64),
        ],
    )
    def test_promotion_table(self, a, b, expected):
        assert promote(a, b) == expected
        assert promote(b, a) == expected  # promotion commutes

    def test_promote_all_folds(self):
        assert promote_all([FLOAT32, WEAK_INT, COMPLEX64]) == COMPLEX64
        assert promote_all([]) is None

    def test_breaks_configured_run_requires_both_sides(self):
        # The VER304 signal: configured width meets hard 64.
        assert breaks_configured_run([CONFIG_COMPLEX, COMPLEX128])
        assert breaks_configured_run([CONFIG_REAL, FLOAT64])
        assert breaks_configured_run([CONFIG_COMPLEX, INT64])
        # No configured operand, or no hard-64 operand: fine.
        assert not breaks_configured_run([COMPLEX128, FLOAT64])
        assert not breaks_configured_run([CONFIG_COMPLEX, CONFIG_REAL])
        assert not breaks_configured_run([CONFIG_COMPLEX, FLOAT32])
        assert not breaks_configured_run([CONFIG_COMPLEX, WEAK_FLOAT])

    def test_str_doubles_complex_bits(self):
        assert str(COMPLEX128) == "complex128"
        assert str(COMPLEX64) == "complex64"
        assert str(CONFIG_COMPLEX) == "configured-complex"


class TestVER301EinsumContracts:
    def test_arity_mismatch(self):
        codes = codes_of(
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.einsum('ij,jk->ik', a)\n"
        )
        assert codes == [("VER301", 3)]

    def test_rank_mismatch_against_known_operand(self):
        codes = codes_of(
            "import numpy as np\n"
            "def f():\n"
            "    a = np.zeros((3, 4, 5))\n"
            "    return np.einsum('ij->i', a)\n"
        )
        assert codes == [("VER301", 4)]

    def test_output_label_not_in_inputs(self):
        codes = codes_of(
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.einsum('ij,jk->iz', a, b)\n"
        )
        assert codes == [("VER301", 3)]

    def test_label_binds_two_extents(self):
        codes = codes_of(
            "import numpy as np\n"
            "def f():\n"
            "    a = np.zeros((3, 4))\n"
            "    b = np.zeros((5, 6))\n"
            "    return np.einsum('ij,jk->ik', a, b)\n"
        )
        assert codes == [("VER301", 5)]

    def test_seam_wrapper_is_checked_too(self):
        codes = codes_of(
            "from repro import arrays\n"
            "def f(a):\n"
            "    return arrays.einsum('bij,bji->b', a, a, a)\n"
        )
        assert codes == [("VER301", 3)]

    def test_runtime_built_subscripts_are_skipped(self):
        # The batched statevector engine builds subscripts per gate arity;
        # an f-string carries no statically checkable contract.
        codes = codes_of(
            "import numpy as np\n"
            "def f(a, b, lhs):\n"
            "    return np.einsum(f'{lhs}->i', a, b)\n"
        )
        assert codes == []

    def test_consistent_symbolic_dims_are_clean(self):
        codes = codes_of(
            "import numpy as np\n"
            "def f(batch, dim):\n"
            "    m = np.zeros((batch, dim, dim))\n"
            "    traces = np.einsum('bii->b', m)\n"
            "    purity = np.einsum('bij,bji->b', m, m)\n"
            "    return traces, purity\n"
        )
        assert codes == []


class TestVER303Downcasts:
    def test_astype_to_real(self):
        codes = codes_of(
            "import numpy as np\n"
            "def f():\n"
            "    a = np.zeros((3,), dtype=np.complex128)\n"
            "    return a.astype(np.float64)\n"
        )
        assert codes == [("VER303", 4)]

    def test_asarray_to_real(self):
        codes = codes_of(
            "import numpy as np\n"
            "from repro import arrays\n"
            "def f(x):\n"
            "    state = arrays.as_complex(x)\n"
            "    return np.asarray(state, dtype=float)\n"
        )
        assert codes == [("VER303", 5)]

    def test_float_builtin_on_complex(self):
        codes = codes_of(
            "from repro import arrays\n"
            "def f(x):\n"
            "    return float(arrays.trace(arrays.as_complex(x)))\n"
        )
        assert codes == [("VER303", 3)]

    def test_store_into_real_buffer(self):
        codes = codes_of(
            "import numpy as np\n"
            "from repro import arrays\n"
            "def f(x):\n"
            "    out = np.zeros((4, 4))\n"
            "    out[0] = arrays.as_complex(x)\n"
            "    return out\n"
        )
        assert codes == [("VER303", 5)]

    def test_real_attribute_is_sanctioned(self):
        codes = codes_of(
            "from repro import arrays\n"
            "def f(x):\n"
            "    t = arrays.trace(arrays.as_complex(x))\n"
            "    return float(t.real)\n"
        )
        assert codes == []

    def test_np_abs_and_np_real_are_sanctioned(self):
        codes = codes_of(
            "import numpy as np\n"
            "from repro import arrays\n"
            "def f(x):\n"
            "    state = arrays.as_complex(x)\n"
            "    probs = np.abs(state) ** 2\n"
            "    diag = np.real(arrays.einsum('bii->bi', np.zeros((2, 4, 4), dtype=np.complex128)))\n"
            "    return float(probs.sum()), diag\n"
        )
        assert codes == []


class TestVER304ConfiguredPromotions:
    def test_kernel_mixing_configured_and_hard64(self):
        codes = codes_of(
            "import numpy as np\n"
            "from repro import arrays\n"
            "def f(x):\n"
            "    gate = np.eye(4, dtype=np.complex128)\n"
            "    state = arrays.as_complex(x)\n"
            "    return arrays.matmul(gate, state)\n"
        )
        assert codes == [("VER304", 6)]

    def test_matmul_operator_on_configured_state(self):
        codes = codes_of(
            "import numpy as np\n"
            "from repro import arrays\n"
            "def f(x):\n"
            "    full = np.zeros((4, 4), dtype=np.complex128)\n"
            "    state = arrays.as_complex(x)\n"
            "    return full @ state\n"
        )
        assert codes == [("VER304", 6)]

    def test_canonical_only_is_clean(self):
        codes = codes_of(
            "import numpy as np\n"
            "def f():\n"
            "    a = np.eye(4, dtype=np.complex128)\n"
            "    b = np.zeros((4, 4), dtype=np.complex128)\n"
            "    return np.matmul(a, b)\n"
        )
        assert codes == []

    def test_configured_only_is_clean(self):
        # The engines' idiom: cast the operator at the application
        # boundary, then contract configured x configured.
        codes = codes_of(
            "import numpy as np\n"
            "from repro import arrays\n"
            "def f(matrix, x):\n"
            "    gate = arrays.as_complex(matrix)\n"
            "    state = arrays.as_complex(x)\n"
            "    return arrays.matmul(gate, state)\n"
        )
        assert codes == []

    def test_weak_scalars_do_not_trigger(self):
        codes = codes_of(
            "from repro import arrays\n"
            "def f(x):\n"
            "    state = arrays.as_complex(x)\n"
            "    return state * 2.0\n"
        )
        assert codes == []

    def test_severity_is_warning(self):
        found, _ = analyze_source(
            "import numpy as np\n"
            "from repro import arrays\n"
            "def f(x):\n"
            "    return arrays.matmul(np.eye(2, dtype=np.complex128), arrays.as_complex(x))\n",
            ENGINE_PATH,
        )
        assert [d.code for d in found] == ["VER304"]
        assert found[0].severity.value == "warning"


class TestClassFieldSeeding:
    def test_init_fields_flow_into_methods(self):
        # _matrices is seeded (batch, dim, dim) in __init__; a rank-2
        # subscript over it in a method must be caught.
        codes = codes_of(
            "from repro import arrays\n"
            "class Engine:\n"
            "    def __init__(self, batch, dim):\n"
            "        self._matrices = arrays.zeros((batch, dim, dim))\n"
            "    def traces(self):\n"
            "        return arrays.einsum('bi->b', self._matrices)\n"
        )
        assert codes == [("VER301", 6)]


class TestSuppressionsAndGating:
    def test_noqa_suppresses_shape_finding(self):
        source = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.einsum('ij,jk->ik', a)  "
            "# repro: noqa VER301 -- corpus fixture, intentionally malformed\n"
        )
        found, suppressed = analyze_source(source, ENGINE_PATH)
        assert found == []
        assert suppressed == {"VER301": 1}

    def test_non_engine_files_are_not_interpreted(self):
        source = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.einsum('ij,jk->ik', a)\n"
        )
        result = analyze_sources([("src/repro/utils/misc.py", source)])
        assert result.diagnostics == []
        engine = analyze_sources([(ENGINE_PATH, source)])
        assert [d.code for d in engine.diagnostics] == ["VER301"]

    def test_engine_gate_matches_rep202_module_set(self):
        from repro.analysis.rules.arrays import ArraySeamRule

        assert set(ENGINE_MODULE_SUFFIXES) == set(ArraySeamRule.ENGINE_MODULES)

    def test_code_filter_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown shape analyzer"):
            analyze_source("x = 1\n", ENGINE_PATH, codes=["VER999"])


class TestVER302ProgramShapes:
    def _program(self):
        from repro.quantum.circuit import QuantumCircuit
        from repro.quantum.program import SweepProgram

        qc = QuantumCircuit(2, 1, name="shape-probe")
        qc.h(0)
        qc.cry(0.3, 0, 1)
        qc.measure(0, 0)
        return SweepProgram.compile(qc, bind_floats=True, name="shape-probe")

    def test_well_formed_program_is_clean(self):
        program = self._program()
        assert verify_program_shapes(program, engine="statevector") == []
        assert verify_program_shapes(program, engine="density") == []

    def test_fixed_matrix_of_wrong_block_size(self):
        program = self._program()
        fixed = [i for i, s in enumerate(program.steps) if s.is_fixed]
        step = program.steps[fixed[0]]
        object.__setattr__(step, "matrix", np.eye(3, dtype=complex))
        findings = verify_program_shapes(program, engine="statevector")
        assert [d.code for d in findings] == ["VER302"]
        assert "amplitude layout" in findings[0].message

    def test_density_step_plan_superoperators_checked(self):
        from repro.quantum.program import DensitySuperoperatorEngine

        program = self._program()
        engine = DensitySuperoperatorEngine()
        plans = list(engine.step_plans(program))
        # Sabotage one precomposed superoperator with a foreign block size.
        sabotaged = False
        for index, plan in enumerate(plans):
            if plan[1] is not None:
                plans[index] = (plan[0], np.eye(3, dtype=complex))
                sabotaged = True
                break
        assert sabotaged
        findings = verify_program_shapes(
            program, engine="density", step_plans=plans
        )
        assert [d.code for d in findings] == ["VER302"]
        assert "4**" in findings[0].message

    def test_real_superoperator_flagged(self):
        program = self._program()
        plans = [("fixed", np.eye(4**len(s.qubits))) for s in program.steps]
        findings = verify_program_shapes(program, engine="density", step_plans=plans)
        assert findings and all(d.code == "VER302" for d in findings)
        assert "complex" in findings[0].message

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be"):
            verify_program_shapes(self._program(), engine="tensor-network")

    def test_reference_suite_is_clean(self):
        assert verify_reference_shapes() == []


class TestSelfAnalysis:
    """Tier-1 gate: the shipped engines interpret clean."""

    def test_src_and_benchmarks_have_no_findings(self):
        result = analyze_paths(
            [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "benchmarks")],
            root=REPO_ROOT,
        )
        assert result.files_checked > 50
        assert result.diagnostics == [], "\n".join(
            d.format() for d in result.diagnostics
        )

    def test_every_engine_module_was_seen(self):
        from repro.analysis.lint import iter_python_files, normalize_path

        files = {
            normalize_path(p, REPO_ROOT)
            for p in iter_python_files([os.path.join(REPO_ROOT, "src")])
        }
        for suffix in ENGINE_MODULE_SUFFIXES:
            assert any(f.endswith(suffix) for f in files), suffix

    def test_shape_codes_catalogued(self):
        assert set(SHAPE_CODES) == {"VER301", "VER302", "VER303", "VER304"}
