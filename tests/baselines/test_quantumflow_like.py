"""Tests for the QuantumFlow-like (QF-pNet) surrogate baseline."""

import numpy as np
import pytest

from repro.baselines.quantumflow_like import QFpNetLikeClassifier
from repro.exceptions import TrainingError, ValidationError


def blobs(num_classes: int = 2, samples: int = 25, num_features: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    centres = rng.uniform(0.1, 0.9, size=(num_classes, num_features))
    features, labels = [], []
    for label, centre in enumerate(centres):
        features.append(centre + 0.05 * rng.normal(size=(samples, num_features)))
        labels.extend([label] * samples)
    return np.vstack(features), np.array(labels)


class TestConstruction:
    def test_parameter_count(self):
        model = QFpNetLikeClassifier(num_features=8, num_classes=3, hidden_units=4, seed=0)
        assert model.num_parameters == 4 * 8 + 4 * 3 + 3

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            QFpNetLikeClassifier(0, 2)
        with pytest.raises(ValidationError):
            QFpNetLikeClassifier(4, 1)
        with pytest.raises(ValidationError):
            QFpNetLikeClassifier(4, 2, hidden_units=0)


class TestPLayerSemantics:
    def test_activations_are_squared_overlaps_in_unit_interval(self):
        model = QFpNetLikeClassifier(4, 2, hidden_units=3, seed=0)
        features = np.random.default_rng(0).uniform(0.1, 0.9, size=(6, 4))
        _, overlaps, activations, _ = model._forward(features)
        assert np.all(np.abs(overlaps) <= 1.0 + 1e-9)
        np.testing.assert_allclose(activations, overlaps**2)

    def test_scale_invariance_of_inputs(self):
        """Amplitude-encoding semantics: rescaling a sample leaves the prediction unchanged."""
        model = QFpNetLikeClassifier(4, 2, hidden_units=3, seed=0)
        sample = np.array([[0.2, 0.4, 0.6, 0.8]])
        np.testing.assert_allclose(
            model.predict_proba(sample), model.predict_proba(3.0 * sample), atol=1e-12
        )


class TestInference:
    def test_probabilities_sum_to_one(self):
        model = QFpNetLikeClassifier(8, 3, seed=0)
        probs = model.predict_proba(np.random.default_rng(0).uniform(size=(5, 8)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_wrong_feature_count_rejected(self):
        with pytest.raises(ValidationError):
            QFpNetLikeClassifier(8, 2).predict(np.zeros((2, 3)))


class TestTraining:
    def test_learns_binary_blobs(self):
        features, labels = blobs(num_classes=2)
        model = QFpNetLikeClassifier(8, 2, hidden_units=8, seed=0)
        history = model.fit(features, labels, epochs=40, learning_rate=0.1, rng=0)
        assert history.losses[-1] < history.losses[0]
        assert model.score(features, labels) > 0.85

    def test_multiclass_training_runs(self):
        features, labels = blobs(num_classes=4)
        model = QFpNetLikeClassifier(8, 4, hidden_units=8, seed=0)
        model.fit(features, labels, epochs=30, learning_rate=0.1, rng=0)
        assert model.score(features, labels) > 0.5

    def test_weight_norm_constraint_preserved_in_forward(self):
        """The p-layer always consumes unit-norm weight rows regardless of raw weights."""
        model = QFpNetLikeClassifier(4, 2, hidden_units=2, seed=0)
        model.weights_p *= 10.0
        features = np.random.default_rng(0).uniform(0.1, 0.9, size=(3, 4))
        _, overlaps, _, _ = model._forward(features)
        assert np.all(np.abs(overlaps) <= 1.0 + 1e-9)

    def test_invalid_labels_rejected(self):
        features, labels = blobs()
        with pytest.raises(TrainingError):
            QFpNetLikeClassifier(8, 2).fit(features, labels + 3, epochs=1)

    def test_mismatched_lengths_rejected(self):
        features, labels = blobs()
        with pytest.raises(TrainingError):
            QFpNetLikeClassifier(8, 2).fit(features, labels[:-1], epochs=1)
