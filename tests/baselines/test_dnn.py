"""Tests for the classical DNN baseline (DNN-kP)."""

import numpy as np
import pytest

from repro.baselines.dnn import DNNClassifier, dnn_for_parameter_budget, hidden_units_for_budget
from repro.exceptions import TrainingError, ValidationError


def blobs(num_classes: int = 2, samples: int = 30, num_features: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    centres = rng.uniform(0.1, 0.9, size=(num_classes, num_features))
    features, labels = [], []
    for label, centre in enumerate(centres):
        features.append(centre + 0.05 * rng.normal(size=(samples, num_features)))
        labels.extend([label] * samples)
    return np.vstack(features), np.array(labels)


class TestParameterAccounting:
    def test_num_parameters_formula(self):
        model = DNNClassifier(num_features=4, num_classes=3, hidden_units=5)
        expected = 4 * 5 + 5 + 5 * 3 + 3
        assert model.num_parameters == expected

    def test_hidden_units_for_budget_close(self):
        for budget in (12, 56, 112, 306, 1218):
            hidden = hidden_units_for_budget(4, 3, budget)
            model = DNNClassifier(4, 3, hidden)
            assert abs(model.num_parameters - budget) <= (4 + 3 + 1)

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValidationError):
            hidden_units_for_budget(4, 3, 2)

    def test_factory_builds_model(self):
        model = dnn_for_parameter_budget(16, 2, 306, seed=0)
        assert isinstance(model, DNNClassifier)
        assert abs(model.num_parameters - 306) < 20


class TestConstruction:
    def test_invalid_dimensions(self):
        with pytest.raises(ValidationError):
            DNNClassifier(0, 2, 4)
        with pytest.raises(ValidationError):
            DNNClassifier(4, 1, 4)
        with pytest.raises(ValidationError):
            DNNClassifier(4, 2, 0)

    def test_seeded_initialisation_reproducible(self):
        a = DNNClassifier(4, 2, 8, seed=3)
        b = DNNClassifier(4, 2, 8, seed=3)
        np.testing.assert_array_equal(a.weights_hidden, b.weights_hidden)


class TestInference:
    def test_probabilities_sum_to_one(self):
        model = DNNClassifier(4, 3, 8, seed=0)
        probs = model.predict_proba(np.random.default_rng(0).uniform(size=(5, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_predict_shape(self):
        model = DNNClassifier(4, 3, 8, seed=0)
        assert model.predict(np.zeros((6, 4))).shape == (6,)

    def test_wrong_feature_count_rejected(self):
        with pytest.raises(ValidationError):
            DNNClassifier(4, 2, 8).predict(np.zeros((3, 5)))

    def test_single_sample_accepted(self):
        assert DNNClassifier(4, 2, 8, seed=0).predict_proba(np.full(4, 0.5)).shape == (1, 2)


class TestTraining:
    def test_learns_separable_blobs(self):
        features, labels = blobs(num_classes=2)
        model = DNNClassifier(4, 2, 8, seed=0)
        history = model.fit(features, labels, epochs=40, learning_rate=0.5, rng=0)
        assert history.losses[-1] < history.losses[0]
        assert model.score(features, labels) > 0.9

    def test_multiclass_training(self):
        features, labels = blobs(num_classes=3)
        model = DNNClassifier(4, 3, 16, seed=0)
        model.fit(features, labels, epochs=60, learning_rate=0.5, rng=0)
        assert model.score(features, labels) > 0.8

    def test_validation_tracked(self):
        features, labels = blobs()
        model = DNNClassifier(4, 2, 8, seed=0)
        history = model.fit(features, labels, epochs=3, validation_data=(features, labels), rng=0)
        assert len(history.validation_accuracies) == 3
        assert all(acc is not None for acc in history.validation_accuracies)

    def test_invalid_labels_rejected(self):
        features, labels = blobs()
        with pytest.raises(TrainingError):
            DNNClassifier(4, 2, 8).fit(features, labels + 7, epochs=1)

    def test_invalid_epochs_rejected(self):
        features, labels = blobs()
        with pytest.raises(TrainingError):
            DNNClassifier(4, 2, 8).fit(features, labels, epochs=0)

    def test_momentum_accepted(self):
        features, labels = blobs()
        model = DNNClassifier(4, 2, 8, seed=0)
        history = model.fit(features, labels, epochs=5, momentum=0.9, rng=0)
        assert len(history.losses) == 5
