"""Tests for the TFQ-like variational baseline."""

import numpy as np
import pytest

from repro.baselines.tfq_like import TFQLikeClassifier
from repro.exceptions import TrainingError, ValidationError


def binary_blobs(samples: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    low = rng.uniform(0.05, 0.3, size=(samples, 4))
    high = rng.uniform(0.7, 0.95, size=(samples, 4))
    features = np.vstack([low, high])
    labels = np.array([0] * samples + [1] * samples)
    return features, labels


class TestConstruction:
    def test_parameter_count(self):
        model = TFQLikeClassifier(num_features=4, num_layers=2, seed=0)
        assert model.num_parameters == 2 * (4 + 1)
        assert model.num_qubits == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            TFQLikeClassifier(num_features=0)
        with pytest.raises(ValidationError):
            TFQLikeClassifier(num_features=4, num_layers=0)

    def test_seed_reproducibility(self):
        a = TFQLikeClassifier(4, seed=3)
        b = TFQLikeClassifier(4, seed=3)
        np.testing.assert_array_equal(a.parameters_, b.parameters_)


class TestInference:
    def test_decision_function_range(self):
        model = TFQLikeClassifier(4, num_layers=1, seed=0)
        values = model.decision_function(np.random.default_rng(0).uniform(0, 1, size=(4, 4)))
        assert np.all(np.abs(values) <= 1.0 + 1e-9)

    def test_probabilities_in_unit_interval(self):
        model = TFQLikeClassifier(4, num_layers=1, seed=0)
        probs = model.predict_proba(np.random.default_rng(0).uniform(0, 1, size=(4, 4)))
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predict_is_binary(self):
        model = TFQLikeClassifier(4, num_layers=1, seed=0)
        predictions = model.predict(np.random.default_rng(0).uniform(0, 1, size=(5, 4)))
        assert set(predictions.tolist()) <= {0, 1}

    def test_wrong_feature_count_rejected(self):
        with pytest.raises(ValidationError):
            TFQLikeClassifier(4).predict(np.zeros((2, 3)))


class TestTraining:
    def test_loss_decreases(self):
        features, labels = binary_blobs(samples=6)
        model = TFQLikeClassifier(4, num_layers=1, seed=0)
        history = model.fit(features, labels, epochs=5, learning_rate=0.5, rng=0)
        assert history.losses[-1] < history.losses[0]

    def test_beats_chance_on_separable_data(self):
        features, labels = binary_blobs(samples=8)
        model = TFQLikeClassifier(4, num_layers=1, seed=0)
        model.fit(features, labels, epochs=5, learning_rate=0.5, rng=0)
        assert model.score(features, labels) > 0.8

    def test_rejects_multiclass_labels(self):
        features, labels = binary_blobs(samples=4)
        with pytest.raises(TrainingError):
            TFQLikeClassifier(4).fit(features, labels + 1, epochs=1)

    def test_rejects_mismatched_lengths(self):
        features, labels = binary_blobs(samples=4)
        with pytest.raises(TrainingError):
            TFQLikeClassifier(4).fit(features, labels[:-1], epochs=1)
