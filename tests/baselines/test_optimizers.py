"""Tests for the baseline optimisers."""

import numpy as np
import pytest

from repro.baselines.optimizers import SGD
from repro.exceptions import TrainingError


class TestSGD:
    def test_plain_step(self):
        params = [np.array([1.0, 2.0])]
        SGD(learning_rate=0.1).step(params, [np.array([1.0, -1.0])])
        np.testing.assert_allclose(params[0], [0.9, 2.1])

    def test_momentum_accumulates(self):
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        params = [np.array([0.0])]
        grads = [np.array([1.0])]
        optimizer.step(params, grads)
        first_move = params[0].copy()
        optimizer.step(params, grads)
        second_move = params[0] - first_move
        assert abs(second_move[0]) > abs(first_move[0])

    def test_decay_reduces_learning_rate(self):
        optimizer = SGD(learning_rate=1.0, decay=0.5)
        optimizer.end_epoch()
        assert optimizer.learning_rate == pytest.approx(0.5)

    def test_minimises_quadratic(self):
        optimizer = SGD(learning_rate=0.1)
        params = [np.array([5.0])]
        for _ in range(100):
            optimizer.step(params, [2 * params[0]])
        assert abs(params[0][0]) < 1e-3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            SGD().step([np.zeros(2)], [np.zeros(3)])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            SGD().step([np.zeros(2)], [])

    def test_invalid_hyperparameters(self):
        with pytest.raises(TrainingError):
            SGD(learning_rate=0.0)
        with pytest.raises(TrainingError):
            SGD(momentum=1.0)
        with pytest.raises(TrainingError):
            SGD(decay=0.0)
