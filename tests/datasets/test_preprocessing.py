"""Tests for dataset preprocessing: class selection, splits, the task pipeline."""

import numpy as np
import pytest

from repro.datasets import load_iris
from repro.datasets.preprocessing import (
    prepare_task,
    select_classes,
    subsample,
    train_test_split,
)
from repro.datasets.synthetic_mnist import generate_synthetic_mnist
from repro.exceptions import DatasetError


class TestSelectClasses:
    def test_relabels_in_given_order(self):
        iris = load_iris()
        subset = select_classes(iris, [2, 0])
        assert set(subset.labels.tolist()) == {0, 1}
        assert subset.class_names == ("virginica", "setosa")
        assert subset.num_samples == 100

    def test_without_relabel(self):
        iris = load_iris()
        subset = select_classes(iris, [1, 2], relabel=False)
        assert set(subset.labels.tolist()) == {1, 2}

    def test_missing_class_raises(self):
        with pytest.raises(DatasetError):
            select_classes(load_iris(), [7])

    def test_duplicate_class_raises(self):
        with pytest.raises(DatasetError):
            select_classes(load_iris(), [0, 0])

    def test_digit_task_selection(self):
        mnist = generate_synthetic_mnist(digits=(0, 3, 6), samples_per_digit=5, rng=0)
        subset = select_classes(mnist, [3, 6])
        assert subset.num_samples == 10
        assert set(subset.labels.tolist()) == {0, 1}


class TestSubsample:
    def test_balanced_output(self):
        subset = subsample(load_iris(), samples_per_class=7, rng=0)
        assert subset.class_counts() == {0: 7, 1: 7, 2: 7}

    def test_too_many_requested(self):
        with pytest.raises(DatasetError):
            subsample(load_iris(), samples_per_class=60)

    def test_reproducible(self):
        a = subsample(load_iris(), 5, rng=3)
        b = subsample(load_iris(), 5, rng=3)
        np.testing.assert_array_equal(a.features, b.features)


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(load_iris(), test_fraction=0.2, rng=0)
        assert train.num_samples + test.num_samples == 150
        assert test.num_samples == pytest.approx(30, abs=3)

    def test_stratification_keeps_all_classes(self):
        train, test = train_test_split(load_iris(), test_fraction=0.3, rng=0)
        assert set(train.labels.tolist()) == {0, 1, 2}
        assert set(test.labels.tolist()) == {0, 1, 2}

    def test_no_overlap(self):
        iris = load_iris()
        train, test = train_test_split(iris, test_fraction=0.3, rng=0)
        train_rows = {tuple(row) for row in train.features}
        # Iris has duplicate rows, so check counts instead of strict disjointness.
        assert train.num_samples + test.num_samples == iris.num_samples

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            train_test_split(load_iris(), test_fraction=1.5)

    def test_reproducible(self):
        a_train, _ = train_test_split(load_iris(), rng=9)
        b_train, _ = train_test_split(load_iris(), rng=9)
        np.testing.assert_array_equal(a_train.features, b_train.features)


class TestPrepareTask:
    def test_iris_pipeline(self):
        data = prepare_task(load_iris(), rng=0)
        assert data.num_features == 4
        assert data.num_classes == 3
        assert data.x_train.min() >= 0.0
        assert data.x_train.max() <= 1.0
        assert data.x_test.min() >= 0.0
        assert data.x_test.max() <= 1.0

    def test_mnist_pipeline_with_pca(self):
        mnist = generate_synthetic_mnist(digits=(3, 6), samples_per_digit=20, rng=0)
        data = prepare_task(mnist, classes=(3, 6), n_components=16, rng=0)
        assert data.num_features == 16
        assert data.num_classes == 2
        assert data.pca is not None
        assert set(data.y_train.tolist()) == {0, 1}

    def test_pca_skipped_when_not_needed(self):
        data = prepare_task(load_iris(), n_components=None, rng=0)
        assert data.pca is None

    def test_subsampling(self):
        data = prepare_task(load_iris(), samples_per_class=10, test_fraction=0.2, rng=0)
        assert data.x_train.shape[0] + data.x_test.shape[0] == 30

    def test_margin_applied(self):
        data = prepare_task(load_iris(), margin=0.1, rng=0)
        assert data.x_train.min() >= 0.1 - 1e-9
        assert data.x_train.max() <= 0.9 + 1e-9

    def test_reproducible(self):
        a = prepare_task(load_iris(), rng=5)
        b = prepare_task(load_iris(), rng=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)
