"""Tests for the from-scratch PCA."""

import numpy as np
import pytest

from repro.datasets.pca import PCA
from repro.exceptions import DatasetError


def correlated_data(n: int = 200, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 2))
    mixing = np.array([[1.0, 0.5, 0.2, 0.0], [0.0, 1.0, 0.7, 0.3]])
    return latent @ mixing + 0.01 * rng.normal(size=(n, 4))


class TestFit:
    def test_components_shape(self):
        pca = PCA(2).fit(correlated_data())
        assert pca.components_.shape == (2, 4)

    def test_components_are_orthonormal(self):
        pca = PCA(3).fit(correlated_data())
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-8)

    def test_explained_variance_sorted(self):
        pca = PCA(3).fit(correlated_data())
        assert np.all(np.diff(pca.explained_variance_) <= 1e-12)

    def test_explained_variance_ratio_bounded(self):
        pca = PCA(4).fit(correlated_data())
        assert pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9
        assert np.all(pca.explained_variance_ratio_ >= 0)

    def test_two_latent_dimensions_capture_most_variance(self):
        pca = PCA(2).fit(correlated_data())
        assert pca.explained_variance_ratio_.sum() > 0.95

    def test_rejects_too_many_components(self):
        with pytest.raises(DatasetError):
            PCA(10).fit(np.zeros((5, 4)))

    def test_rejects_1d_data(self):
        with pytest.raises(DatasetError):
            PCA(1).fit(np.zeros(5))

    def test_rejects_non_positive_components(self):
        with pytest.raises(DatasetError):
            PCA(0)


class TestTransform:
    def test_projection_shape(self):
        data = correlated_data()
        assert PCA(3).fit_transform(data).shape == (data.shape[0], 3)

    def test_projection_is_centred(self):
        projected = PCA(2).fit_transform(correlated_data())
        np.testing.assert_allclose(projected.mean(axis=0), [0.0, 0.0], atol=1e-8)

    def test_transform_before_fit_raises(self):
        with pytest.raises(DatasetError):
            PCA(2).transform(np.zeros((3, 4)))

    def test_full_rank_reconstruction_is_exact(self):
        data = correlated_data(n=50)
        pca = PCA(4).fit(data)
        np.testing.assert_allclose(pca.inverse_transform(pca.transform(data)), data, atol=1e-8)

    def test_truncated_reconstruction_error_decreases_with_components(self):
        data = correlated_data()
        errors = [PCA(k).fit(data).reconstruction_error(data) for k in (1, 2, 3, 4)]
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    def test_projection_preserved_for_new_samples(self):
        data = correlated_data()
        pca = PCA(2).fit(data[:150])
        projected = pca.transform(data[150:])
        assert projected.shape == (50, 2)
        assert np.all(np.isfinite(projected))
