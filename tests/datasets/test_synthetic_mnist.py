"""Tests for the synthetic-MNIST generator."""

import numpy as np
import pytest

from repro.datasets.pca import PCA
from repro.datasets.synthetic_mnist import generate_synthetic_mnist, render_digit
from repro.exceptions import DatasetError


class TestRenderDigit:
    def test_shape_and_range(self):
        image = render_digit(3, rng=0)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_contains_ink(self):
        image = render_digit(8, rng=0, noise_level=0.0)
        assert image.sum() > 5.0

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(render_digit(5, rng=7), render_digit(5, rng=7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(render_digit(5, rng=1), render_digit(5, rng=2))

    def test_all_digits_render(self):
        for digit in range(10):
            assert render_digit(digit, rng=0).sum() > 0

    def test_invalid_digit_rejected(self):
        with pytest.raises(DatasetError):
            render_digit(11, rng=0)

    def test_custom_image_size(self):
        assert render_digit(0, rng=0, image_size=16).shape == (16, 16)


class TestGenerateSyntheticMnist:
    def test_shapes_and_labels(self):
        ds = generate_synthetic_mnist(digits=(3, 6), samples_per_digit=10, rng=0)
        assert ds.features.shape == (20, 784)
        assert set(ds.labels.tolist()) == {3, 6}

    def test_balanced_classes(self):
        ds = generate_synthetic_mnist(digits=(0, 1, 2), samples_per_digit=5, rng=0)
        assert ds.class_counts() == {0: 5, 1: 5, 2: 5}

    def test_deterministic_given_seed(self):
        a = generate_synthetic_mnist(digits=(1, 7), samples_per_digit=4, rng=3)
        b = generate_synthetic_mnist(digits=(1, 7), samples_per_digit=4, rng=3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_unflattened_output(self):
        ds = generate_synthetic_mnist(digits=(4,), samples_per_digit=3, rng=0, flatten=False)
        assert ds.features.shape == (3, 28, 28)

    def test_rejects_duplicate_digits(self):
        with pytest.raises(DatasetError):
            generate_synthetic_mnist(digits=(3, 3), samples_per_digit=2)

    def test_rejects_empty_digits(self):
        with pytest.raises(DatasetError):
            generate_synthetic_mnist(digits=(), samples_per_digit=2)

    def test_rejects_non_positive_samples(self):
        with pytest.raises(DatasetError):
            generate_synthetic_mnist(digits=(1,), samples_per_digit=0)


class TestClassSeparability:
    """The substitute dataset must preserve the structure the paper's tasks rely on."""

    def test_classes_separable_in_pca_space(self):
        """Distinct digits form distinguishable clusters after 16-D PCA."""
        ds = generate_synthetic_mnist(digits=(1, 5), samples_per_digit=30, rng=0)
        projected = PCA(16).fit_transform(ds.features)
        ones = projected[ds.labels == 1]
        fives = projected[ds.labels == 5]
        between = np.linalg.norm(ones.mean(axis=0) - fives.mean(axis=0))
        within = 0.5 * (
            np.mean(np.linalg.norm(ones - ones.mean(axis=0), axis=1))
            + np.mean(np.linalg.norm(fives - fives.mean(axis=0), axis=1))
        )
        assert between > within  # clusters are farther apart than they are wide

    def test_similar_digits_are_harder_than_dissimilar(self):
        """3 vs 8 (shared strokes) overlaps more than 1 vs 5, as in real MNIST."""

        def separation(pair):
            ds = generate_synthetic_mnist(digits=pair, samples_per_digit=30, rng=0)
            projected = PCA(16).fit_transform(ds.features)
            first = projected[ds.labels == pair[0]]
            second = projected[ds.labels == pair[1]]
            between = np.linalg.norm(first.mean(axis=0) - second.mean(axis=0))
            within = 0.5 * (
                np.mean(np.linalg.norm(first - first.mean(axis=0), axis=1))
                + np.mean(np.linalg.norm(second - second.mean(axis=0), axis=1))
            )
            return between / within

        assert separation((1, 5)) > separation((3, 8))
