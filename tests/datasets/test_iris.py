"""Tests for the embedded Iris dataset and the Dataset container."""

import numpy as np
import pytest

from repro.datasets.iris import Dataset, load_iris


class TestLoadIris:
    def test_shape(self):
        iris = load_iris()
        assert iris.features.shape == (150, 4)
        assert iris.labels.shape == (150,)

    def test_three_balanced_classes(self):
        iris = load_iris()
        assert iris.num_classes == 3
        assert iris.class_counts() == {0: 50, 1: 50, 2: 50}

    def test_class_names(self):
        assert load_iris().class_names == ("setosa", "versicolour", "virginica")

    def test_feature_ranges_are_plausible(self):
        iris = load_iris()
        # Sepal length 4.3-7.9 cm, petal width 0.1-2.5 cm in Fisher's data.
        assert iris.features[:, 0].min() == pytest.approx(4.3)
        assert iris.features[:, 0].max() == pytest.approx(7.9)
        assert iris.features[:, 3].min() == pytest.approx(0.1)
        assert iris.features[:, 3].max() == pytest.approx(2.5)

    def test_setosa_is_linearly_separable_by_petal_length(self):
        iris = load_iris()
        setosa_petals = iris.features[iris.labels == 0, 2]
        others_petals = iris.features[iris.labels != 0, 2]
        assert setosa_petals.max() < others_petals.min()

    def test_deterministic(self):
        np.testing.assert_array_equal(load_iris().features, load_iris().features)


class TestDatasetContainer:
    def test_properties(self):
        ds = Dataset(
            features=np.zeros((4, 2)),
            labels=np.array([0, 1, 0, 1]),
            class_names=("a", "b"),
            feature_names=("x", "y"),
        )
        assert ds.num_samples == 4
        assert ds.num_features == 2
        assert ds.num_classes == 2

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(
                features=np.zeros((4, 2)),
                labels=np.array([0, 1]),
                class_names=("a", "b"),
                feature_names=("x", "y"),
            )

    def test_features_must_be_2d(self):
        with pytest.raises(ValueError):
            Dataset(
                features=np.zeros(4),
                labels=np.zeros(4, dtype=int),
                class_names=("a",),
                feature_names=("x",),
            )
