"""Tests for the provider job ledger."""

from repro.hardware.job import JobLedger
from repro.quantum.simulator import SimulationResult


def fake_result(cx: int = 10, swaps: int = 2, shots: int = 100) -> SimulationResult:
    return SimulationResult(
        circuit_name="circ",
        probabilities={"0": 1.0},
        shots=shots,
        metadata={"transpile": {"cx_count": cx, "inserted_swaps": swaps, "depth": 20}},
    )


class TestJobLedger:
    def test_record_extracts_transpile_stats(self):
        ledger = JobLedger()
        record = ledger.record("ibmq_test", fake_result(), queue_latency_seconds=30.0)
        assert record.cx_count == 10
        assert record.inserted_swaps == 2
        assert record.depth == 20
        assert record.total_two_qubit_gates == 10

    def test_job_ids_increment(self):
        ledger = JobLedger()
        first = ledger.record("b", fake_result(), 0.0)
        second = ledger.record("b", fake_result(), 0.0)
        assert second.job_id == first.job_id + 1

    def test_totals(self):
        ledger = JobLedger()
        ledger.record("b", fake_result(shots=100), 10.0)
        ledger.record("b", fake_result(shots=200), 10.0)
        assert ledger.num_jobs == 2
        assert ledger.total_shots == 300
        assert ledger.total_queue_latency_seconds == 20.0

    def test_summary_empty(self):
        assert JobLedger().summary()["num_jobs"] == 0

    def test_summary_means(self):
        ledger = JobLedger()
        ledger.record("b", fake_result(cx=10), 0.0)
        ledger.record("b", fake_result(cx=20), 0.0)
        assert ledger.summary()["mean_cx"] == 15.0

    def test_clear(self):
        ledger = JobLedger()
        ledger.record("b", fake_result(), 0.0)
        ledger.clear()
        assert ledger.num_jobs == 0

    def test_missing_transpile_metadata_defaults_to_zero(self):
        result = SimulationResult(circuit_name="c", probabilities={}, shots=None)
        record = JobLedger().record("b", result, 0.0)
        assert record.cx_count == 0
        assert record.shots is None


class TestLedgerExtend:
    """Merging worker-shard ledgers back into a parent ledger."""

    def _worker_ledger(self, count: int) -> JobLedger:
        ledger = JobLedger()
        for index in range(count):
            ledger.record("worker", fake_result(cx=index), 1.0)
        return ledger

    def test_extend_preserves_submission_order(self):
        parent = JobLedger()
        parent.extend(self._worker_ledger(3).records)
        assert [record.cx_count for record in parent.records] == [0, 1, 2]

    def test_extend_renumbers_job_ids_contiguously(self):
        parent = JobLedger()
        parent.record("parent", fake_result(), 0.0)
        parent.extend(self._worker_ledger(2).records)
        parent.extend(self._worker_ledger(2).records)
        assert [record.job_id for record in parent.records] == [0, 1, 2, 3, 4]

    def test_extend_does_not_mutate_source_records(self):
        worker = self._worker_ledger(2)
        parent = JobLedger()
        parent.record("parent", fake_result(), 0.0)
        parent.extend(worker.records)
        assert [record.job_id for record in worker.records] == [0, 1]

    def test_shard_order_merge_is_deterministic(self):
        """Merging shard ledgers in index order gives one canonical sequence."""
        shard_ledgers = [self._worker_ledger(2), self._worker_ledger(3)]
        merged_a = JobLedger()
        for ledger in shard_ledgers:
            merged_a.extend(ledger.records)
        merged_b = JobLedger()
        for ledger in shard_ledgers:
            merged_b.extend(ledger.records)
        assert [
            (record.job_id, record.cx_count) for record in merged_a.records
        ] == [(record.job_id, record.cx_count) for record in merged_b.records]
