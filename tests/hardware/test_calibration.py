"""Tests for device calibration profiles."""

import pytest

from repro.exceptions import BackendError
from repro.hardware.calibration import CALIBRATIONS, available_devices, get_calibration


class TestRegistry:
    def test_expected_devices_present(self):
        devices = available_devices()
        for name in (
            "ibmq_london",
            "ibmq_new_york",
            "ibmq_melbourne",
            "ibmq_rome",
            "ibmq_cairo",
            "ionq_trapped_ion",
        ):
            assert name in devices

    def test_lookup_case_insensitive(self):
        assert get_calibration("IBMQ_London").name == "ibmq_london"

    def test_unknown_device(self):
        with pytest.raises(BackendError):
            get_calibration("ibmq_atlantis")


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(CALIBRATIONS))
    def test_coupling_map_is_connected_and_sized(self, name):
        profile = get_calibration(name)
        coupling = profile.coupling_map()
        assert coupling.num_qubits == profile.num_qubits
        assert coupling.is_connected()

    @pytest.mark.parametrize("name", sorted(CALIBRATIONS))
    def test_noise_model_is_not_ideal(self, name):
        assert not get_calibration(name).noise_model().is_ideal

    @pytest.mark.parametrize("name", sorted(CALIBRATIONS))
    def test_error_rates_in_physical_ranges(self, name):
        profile = get_calibration(name)
        assert 0 < profile.single_qubit_error < 0.01
        assert 0 < profile.two_qubit_error < 0.1
        assert 0 < profile.readout_error < 0.1
        assert profile.t2_us <= 2 * profile.t1_us

    def test_ionq_is_fully_connected(self):
        assert get_calibration("ionq_trapped_ion").coupling_map().fully_connected

    def test_ibmq_devices_are_not_fully_connected(self):
        for name in ("ibmq_london", "ibmq_cairo", "ibmq_melbourne"):
            assert not get_calibration(name).coupling_map().fully_connected

    def test_ionq_two_qubit_error_lower_than_superconducting(self):
        ionq = get_calibration("ionq_trapped_ion")
        for name in ("ibmq_london", "ibmq_new_york", "ibmq_melbourne", "ibmq_rome", "ibmq_cairo"):
            assert ionq.two_qubit_error < get_calibration(name).two_qubit_error

    def test_melbourne_is_noisiest_iris_site(self):
        """Fig. 11's ordering relies on Melbourne being the noisiest of the three sites."""
        melbourne = get_calibration("ibmq_melbourne")
        for name in ("ibmq_london", "ibmq_new_york"):
            assert melbourne.two_qubit_error > get_calibration(name).two_qubit_error
