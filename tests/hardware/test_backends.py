"""Tests for the simulated IBM-Q and IonQ backends."""

import numpy as np
import pytest

from repro.core import QuClassi
from repro.hardware import (
    IBMQBackend,
    IonQBackend,
    ibmq_cairo,
    ibmq_london,
    ibmq_melbourne,
    ibmq_rome,
    ionq,
)
from repro.quantum import IdealBackend
from repro.quantum.circuit import QuantumCircuit


def discriminator_circuit() -> QuantumCircuit:
    model = QuClassi(num_features=4, num_classes=2, architecture="s", seed=0)
    return model.discriminator_circuit(0, np.array([0.2, 0.7, 0.4, 0.9]))


class TestFactories:
    def test_site_factories(self):
        assert ibmq_london().name == "ibmq_london"
        assert ibmq_rome().name == "ibmq_rome"
        assert ibmq_melbourne().name == "ibmq_melbourne"
        assert ibmq_cairo().name == "ibmq_cairo"
        assert ionq().name == "ionq_trapped_ion"

    def test_non_ibmq_profile_rejected(self):
        with pytest.raises(ValueError):
            IBMQBackend("ionq_trapped_ion")

    def test_backends_report_noisy(self):
        assert ibmq_london().is_noisy
        assert ionq().is_noisy


class TestExecution:
    def test_ibmq_run_returns_counts_and_ledger(self):
        backend = ibmq_london(seed=0)
        result = backend.run(discriminator_circuit(), shots=1024)
        assert result.counts.shots == 1024
        assert backend.ledger.num_jobs == 1
        assert backend.ledger.total_shots == 1024
        assert backend.ledger.records[0].cx_count > 0

    def test_ionq_needs_no_routing_swaps(self):
        backend = ionq(seed=0)
        backend.run(discriminator_circuit(), shots=256)
        assert backend.last_transpile_stats["inserted_swaps"] == 0

    def test_ibmq_needs_routing_swaps(self):
        backend = ibmq_london(seed=0)
        backend.run(discriminator_circuit(), shots=256)
        assert backend.last_transpile_stats["inserted_swaps"] > 0

    def test_cairo_routes_more_cnots_than_ionq(self):
        """The mechanism behind the paper's IonQ (~80%) vs Cairo (~72%) gap."""
        circuit = discriminator_circuit()
        ionq_backend = ionq(seed=0)
        cairo_backend = ibmq_cairo(seed=0)
        ionq_backend.run(circuit, shots=128)
        cairo_backend.run(circuit, shots=128)
        assert cairo_backend.last_transpile_stats["cx_count"] > ionq_backend.last_transpile_stats["cx_count"]
        assert cairo_backend.last_transpile_stats["added_cx"] >= 15

    def test_noise_pulls_swap_test_towards_half(self):
        """Hardware noise dilutes P(ancilla=0) towards 0.5 relative to the ideal value."""
        circuit = discriminator_circuit()
        ideal = IdealBackend().ancilla_zero_probability(circuit)
        noisy = ibmq_melbourne(seed=0).ancilla_zero_probability(circuit, shots=None)
        assert abs(noisy - 0.5) < abs(ideal - 0.5)

    def test_ionq_closer_to_ideal_than_ibmq(self):
        circuit = discriminator_circuit()
        ideal = IdealBackend().ancilla_zero_probability(circuit)
        ionq_p = ionq(seed=0).ancilla_zero_probability(circuit, shots=None)
        ibmq_p = ibmq_cairo(seed=0).ancilla_zero_probability(circuit, shots=None)
        assert abs(ionq_p - ideal) < abs(ibmq_p - ideal)

    def test_job_ledger_summary(self):
        backend = ibmq_rome(seed=0)
        circuit = discriminator_circuit()
        backend.run(circuit, shots=100)
        backend.run(circuit, shots=100)
        summary = backend.ledger.summary()
        assert summary["num_jobs"] == 2
        assert summary["total_shots"] == 200
        assert summary["mean_cx"] > 0
        assert summary["total_queue_latency_seconds"] > 0

    def test_melbourne_hosts_five_qubit_circuit_without_full_device_simulation(self):
        """15-qubit Melbourne only simulates the 5 qubits the circuit needs."""
        backend = ibmq_melbourne(seed=0)
        result = backend.run(discriminator_circuit(), shots=None)
        assert result.density_matrix.num_qubits == 5


class TestBatchExecution:
    def test_batch_counts_seed_match_the_run_loop(self):
        """The vectorised noisy batch draws shot for shot like sequential runs."""
        model = QuClassi(num_features=4, num_classes=2, architecture="s", seed=0)
        rng = np.random.default_rng(0)
        circuits = [
            model.discriminator_circuit(0, rng.uniform(0, 1, 4)) for _ in range(4)
        ]
        batched = ibmq_london(seed=7).run_batch(circuits, shots=300)
        loop_backend = ibmq_london(seed=7)
        looped = [loop_backend.run(circuit, shots=300) for circuit in circuits]
        assert [r.counts.data for r in batched] == [r.counts.data for r in looped]

    @pytest.mark.parametrize("factory", [ibmq_london, ionq])
    def test_batch_records_every_job_in_the_ledger(self, factory):
        backend = factory(seed=0)
        circuit = discriminator_circuit()
        backend.run_batch([circuit, circuit.copy(), circuit.copy()], shots=128)
        assert backend.ledger.num_jobs == 3
        assert backend.ledger.total_shots == 3 * 128
        assert all(record.cx_count >= 0 for record in backend.ledger.records)


class TestQueueLatencySimulation:
    """Opt-in queue waits: one sleep per job submission, none by default."""

    def _sleep_recorder(self, monkeypatch):
        slept = []
        monkeypatch.setattr(
            "repro.quantum.backend.time.sleep", lambda seconds: slept.append(seconds)
        )
        return slept

    def test_disabled_by_default(self, monkeypatch):
        slept = self._sleep_recorder(monkeypatch)
        backend = ibmq_london(seed=0)
        backend.run(discriminator_circuit(), shots=32)
        assert slept == []

    def test_run_sleeps_once_per_submission(self, monkeypatch):
        slept = self._sleep_recorder(monkeypatch)
        backend = IBMQBackend("ibmq_london", seed=0, simulate_queue_latency=True)
        backend.run(discriminator_circuit(), shots=32)
        assert slept == [backend.properties.queue_latency_seconds]

    def test_batch_is_one_job_submission(self, monkeypatch):
        slept = self._sleep_recorder(monkeypatch)
        backend = IBMQBackend("ibmq_london", seed=0, simulate_queue_latency=True)
        backend.run_batch([discriminator_circuit()] * 3, shots=32)
        assert slept == [backend.properties.queue_latency_seconds]

    def test_latency_does_not_change_sampled_counts(self, monkeypatch):
        self._sleep_recorder(monkeypatch)
        circuit = discriminator_circuit()
        plain = IBMQBackend("ibmq_london", seed=5).run(circuit, shots=64).counts
        simulated = (
            IBMQBackend("ibmq_london", seed=5, simulate_queue_latency=True)
            .run(circuit, shots=64)
            .counts
        )
        assert plain == simulated

    def test_ionq_accepts_flag(self, monkeypatch):
        slept = self._sleep_recorder(monkeypatch)
        backend = IonQBackend(seed=0, simulate_queue_latency=True)
        backend.run(discriminator_circuit(), shots=32)
        assert slept == [backend.properties.queue_latency_seconds]
