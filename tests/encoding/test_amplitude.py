"""Tests for amplitude (state-vector) encoding."""

import numpy as np
import pytest

from repro.encoding.amplitude import AmplitudeEncoder
from repro.exceptions import EncodingError
from repro.quantum.statevector import Statevector


class TestAmplitudes:
    def test_qubit_count_is_logarithmic(self):
        encoder = AmplitudeEncoder()
        assert encoder.num_qubits(2) == 1
        assert encoder.num_qubits(4) == 2
        assert encoder.num_qubits(5) == 3
        assert encoder.num_qubits(16) == 4

    def test_normalisation(self):
        amplitudes = AmplitudeEncoder().amplitudes([3.0, 4.0])
        assert np.linalg.norm(amplitudes) == pytest.approx(1.0)
        np.testing.assert_allclose(amplitudes, [0.6, 0.8])

    def test_zero_padding(self):
        amplitudes = AmplitudeEncoder().amplitudes([1.0, 1.0, 1.0])
        assert amplitudes.shape == (4,)
        assert amplitudes[3] == 0.0

    def test_rejects_negative_features(self):
        with pytest.raises(EncodingError):
            AmplitudeEncoder().amplitudes([0.5, -0.1])

    def test_rejects_all_zero(self):
        with pytest.raises(EncodingError):
            AmplitudeEncoder().amplitudes([0.0, 0.0])

    def test_encode_returns_matching_statevector(self):
        features = [0.2, 0.4, 0.6, 0.8]
        state = AmplitudeEncoder().encode(features)
        np.testing.assert_allclose(
            np.abs(state.data), AmplitudeEncoder().amplitudes(features), atol=1e-12
        )


class TestSynthesisedCircuit:
    @pytest.mark.parametrize(
        "features",
        [
            [1.0, 1.0],
            [0.3, 0.9],
            [0.1, 0.2, 0.3, 0.4],
            [0.9, 0.0, 0.4, 0.7],
            [0.05, 0.2, 0.7, 0.1, 0.6, 0.3, 0.9, 0.2],
            [1.0, 0.0, 0.0, 0.0],
        ],
        ids=["uniform2", "pair", "four", "with_zero", "eight", "basis_state"],
    )
    def test_circuit_prepares_encoded_amplitudes(self, features):
        encoder = AmplitudeEncoder()
        target = encoder.amplitudes(features)
        circuit = encoder.encoding_circuit(features)
        state = Statevector(circuit.num_qubits).evolve(circuit)
        # Real non-negative amplitude vectors are prepared exactly (up to sign
        # conventions that cannot appear for non-negative targets).
        np.testing.assert_allclose(np.abs(state.data), target, atol=1e-9)

    def test_circuit_uses_only_native_gates(self):
        circuit = AmplitudeEncoder().encoding_circuit([0.1, 0.5, 0.2, 0.9])
        assert set(circuit.count_ops()) <= {"ry", "cx"}

    def test_offset_placement(self):
        circuit = AmplitudeEncoder().encoding_circuit([0.5, 0.5], offset=2, total_qubits=3)
        used = {q for inst in circuit.instructions for q in inst.qubits}
        assert used == {2}

    def test_total_qubits_too_small(self):
        with pytest.raises(EncodingError):
            AmplitudeEncoder().encoding_circuit([0.1, 0.2, 0.3, 0.4], offset=1, total_qubits=2)
