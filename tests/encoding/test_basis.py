"""Tests for basis (binary) encoding."""

import numpy as np
import pytest

from repro.encoding.basis import BasisEncoder
from repro.exceptions import EncodingError


class TestBasisEncoder:
    def test_threshold_default(self):
        bits = BasisEncoder().bits([0.2, 0.8, 0.5])
        np.testing.assert_array_equal(bits, [0, 1, 0])

    def test_custom_threshold(self):
        bits = BasisEncoder(threshold=0.1).bits([0.2, 0.05])
        np.testing.assert_array_equal(bits, [1, 0])

    def test_invalid_threshold(self):
        with pytest.raises(EncodingError):
            BasisEncoder(threshold=1.5)

    def test_num_qubits(self):
        assert BasisEncoder().num_qubits(7) == 7

    def test_encode_prepares_basis_state(self):
        state = BasisEncoder().encode([0.9, 0.1, 0.9])
        # bits 101 -> index 5
        assert state.probabilities()[5] == pytest.approx(1.0)

    def test_circuit_only_uses_x(self):
        circuit = BasisEncoder().encoding_circuit([0.9, 0.1])
        assert set(circuit.count_ops()) <= {"x"}

    def test_all_below_threshold_gives_ground_state(self):
        state = BasisEncoder().encode([0.1, 0.2])
        assert state.probabilities()[0] == pytest.approx(1.0)

    def test_offset(self):
        circuit = BasisEncoder().encoding_circuit([0.9], offset=2, total_qubits=3)
        assert circuit.instructions[0].qubits == (2,)

    def test_rejects_out_of_range(self):
        with pytest.raises(EncodingError):
            BasisEncoder().bits([1.2])
