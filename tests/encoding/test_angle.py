"""Tests for the angle encoders (the paper's data-qubitisation scheme)."""

import math

import numpy as np
import pytest

from repro.encoding.angle import DualAngleEncoder, SingleAngleEncoder, rotation_angle
from repro.exceptions import EncodingError
from repro.quantum.statevector import Statevector


class TestRotationAngle:
    def test_zero_maps_to_zero(self):
        assert rotation_angle(0.0) == pytest.approx(0.0)

    def test_one_maps_to_pi(self):
        assert rotation_angle(1.0) == pytest.approx(math.pi)

    def test_half_maps_to_half_pi(self):
        assert rotation_angle(0.5) == pytest.approx(math.pi / 2)

    def test_monotone(self):
        values = [rotation_angle(x) for x in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            rotation_angle(1.5)
        with pytest.raises(EncodingError):
            rotation_angle(-0.2)


class TestDualAngleEncoder:
    def test_qubit_count_halves_dimensions(self):
        encoder = DualAngleEncoder()
        assert encoder.num_qubits(4) == 2
        assert encoder.num_qubits(16) == 8
        assert encoder.num_qubits(5) == 3  # odd dimension rounds up

    def test_first_dimension_sets_excited_probability(self):
        """Dimension 2i becomes qubit i's P(|1>) — the paper's expectation encoding."""
        encoder = DualAngleEncoder()
        features = np.array([0.3, 0.0, 0.8, 0.0])
        state = encoder.encode(features)
        probs_q0 = state.probabilities([0])
        probs_q1 = state.probabilities([1])
        assert probs_q0[1] == pytest.approx(0.3)
        assert probs_q1[1] == pytest.approx(0.8)

    def test_second_dimension_does_not_change_z_expectation(self):
        """The RZ rotation encodes the second dimension without disturbing the first."""
        encoder = DualAngleEncoder()
        without_second = encoder.encode(np.array([0.4, 0.0]))
        with_second = encoder.encode(np.array([0.4, 0.7]))
        np.testing.assert_allclose(
            without_second.probabilities([0]), with_second.probabilities([0]), atol=1e-12
        )

    def test_second_dimension_changes_phase(self):
        encoder = DualAngleEncoder()
        a = encoder.encode(np.array([0.4, 0.1]))
        b = encoder.encode(np.array([0.4, 0.9]))
        assert a.fidelity(b) < 1.0 - 1e-6

    def test_distinct_points_give_distinct_states(self):
        encoder = DualAngleEncoder()
        a = encoder.encode(np.array([0.2, 0.3, 0.4, 0.5]))
        b = encoder.encode(np.array([0.8, 0.3, 0.4, 0.5]))
        assert a.fidelity(b) < 0.999

    def test_identical_points_give_identical_states(self):
        encoder = DualAngleEncoder()
        features = np.array([0.2, 0.9, 0.6, 0.1])
        assert encoder.encode(features).fidelity(encoder.encode(features)) == pytest.approx(1.0)

    def test_circuit_offset_places_gates_on_later_qubits(self):
        encoder = DualAngleEncoder()
        circuit = encoder.encoding_circuit([0.5, 0.5], offset=3, total_qubits=4)
        assert circuit.num_qubits == 4
        assert all(inst.qubits == (3,) for inst in circuit.instructions)

    def test_total_qubits_too_small_rejected(self):
        with pytest.raises(EncodingError):
            DualAngleEncoder().encoding_circuit([0.5, 0.5], offset=2, total_qubits=2)

    def test_rejects_out_of_range_features(self):
        with pytest.raises(EncodingError):
            DualAngleEncoder().encode(np.array([0.5, 1.4]))

    def test_rejects_empty_features(self):
        with pytest.raises(EncodingError):
            DualAngleEncoder().encode(np.array([]))

    def test_rejects_non_finite(self):
        with pytest.raises(EncodingError):
            DualAngleEncoder().encode(np.array([0.5, np.nan]))

    def test_angles_helper(self):
        angles = DualAngleEncoder().angles([0.0, 1.0])
        np.testing.assert_allclose(angles, [0.0, math.pi])

    def test_odd_dimension_leaves_last_qubit_ry_only(self):
        circuit = DualAngleEncoder().encoding_circuit([0.2, 0.4, 0.6])
        ops = circuit.count_ops()
        assert ops["ry"] == 2
        assert ops["rz"] == 1


class TestSingleAngleEncoder:
    def test_one_qubit_per_dimension(self):
        assert SingleAngleEncoder().num_qubits(4) == 4

    def test_encoding_matches_expectation(self):
        state = SingleAngleEncoder().encode(np.array([0.25, 0.75]))
        assert state.probabilities([0])[1] == pytest.approx(0.25)
        assert state.probabilities([1])[1] == pytest.approx(0.75)

    def test_circuit_uses_only_ry(self):
        circuit = SingleAngleEncoder().encoding_circuit([0.3, 0.6, 0.9])
        assert set(circuit.count_ops()) == {"ry"}

    def test_uses_more_qubits_than_dual(self):
        features = np.linspace(0.1, 0.9, 6)
        assert SingleAngleEncoder().num_qubits(6) == 2 * DualAngleEncoder().num_qubits(6)
