"""Tests for min-max feature normalisation."""

import numpy as np
import pytest

from repro.encoding.normalization import MinMaxNormalizer
from repro.exceptions import EncodingError


class TestMinMaxNormalizer:
    def test_fit_transform_range(self):
        data = np.array([[1.0, 10.0], [3.0, 20.0], [5.0, 30.0]])
        scaled = MinMaxNormalizer().fit_transform(data)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_transform_uses_training_statistics(self):
        train = np.array([[0.0], [10.0]])
        test = np.array([[5.0]])
        normalizer = MinMaxNormalizer().fit(train)
        assert normalizer.transform(test)[0, 0] == pytest.approx(0.5)

    def test_out_of_range_test_data_clipped(self):
        normalizer = MinMaxNormalizer().fit(np.array([[0.0], [1.0]]))
        assert normalizer.transform(np.array([[2.0]]))[0, 0] == pytest.approx(1.0)
        assert normalizer.transform(np.array([[-1.0]]))[0, 0] == pytest.approx(0.0)

    def test_constant_feature_does_not_divide_by_zero(self):
        data = np.array([[3.0, 1.0], [3.0, 2.0]])
        scaled = MinMaxNormalizer().fit_transform(data)
        assert np.all(np.isfinite(scaled))

    def test_margin_keeps_away_from_extremes(self):
        data = np.array([[0.0], [1.0]])
        scaled = MinMaxNormalizer(margin=0.1).fit_transform(data)
        assert scaled.min() == pytest.approx(0.1)
        assert scaled.max() == pytest.approx(0.9)

    def test_inverse_transform_round_trip(self):
        data = np.array([[1.0, -5.0], [2.0, 5.0], [4.0, 0.0]])
        normalizer = MinMaxNormalizer()
        scaled = normalizer.fit_transform(data)
        np.testing.assert_allclose(normalizer.inverse_transform(scaled), data, atol=1e-10)

    def test_transform_before_fit_raises(self):
        with pytest.raises(EncodingError):
            MinMaxNormalizer().transform(np.array([[1.0]]))

    def test_invalid_margin(self):
        with pytest.raises(EncodingError):
            MinMaxNormalizer(margin=0.6)

    def test_invalid_range(self):
        with pytest.raises(EncodingError):
            MinMaxNormalizer(feature_min=1.0, feature_max=0.0)

    def test_rejects_1d_input(self):
        with pytest.raises(EncodingError):
            MinMaxNormalizer().fit(np.array([1.0, 2.0]))
