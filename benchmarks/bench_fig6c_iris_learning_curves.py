"""Fig. 6c — Iris accuracy vs epoch: QuClassi vs DNNs of 12-112 parameters.

Paper shape: the quantum classifier climbs to high accuracy within a handful
of epochs, faster than the similarly parameterised classical networks, and
stays at or above them for most of the run.
"""

import numpy as np

from repro.experiments import fig6c_learning_curves


def test_fig6c_learning_curves(experiment_runner):
    result = experiment_runner(
        fig6c_learning_curves, epochs=20, dnn_budgets=(12, 28, 56, 112), seed=0
    )

    quclassi = next(series for series in result.series if series.name.startswith("QuClassi"))
    dnn_series = [series for series in result.series if series.name.startswith("DNN")]

    # Shape check: early-epoch accuracy of QuClassi beats the mean DNN curve.
    early = slice(0, 5)
    quclassi_early = float(np.nanmean(quclassi.y[early]))
    dnn_early = float(np.nanmean([np.nanmean(series.y[early]) for series in dnn_series]))
    assert quclassi_early >= dnn_early - 0.05

    # And it ends at a competitive final accuracy.
    assert quclassi.final > 0.8
