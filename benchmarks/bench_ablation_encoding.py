"""Ablation (§4.2) — two-dimensions-per-qubit vs one-dimension-per-qubit encoding.

Design-choice check from DESIGN.md: the dual encoding halves the qubit count
(the paper's motivation) while keeping accuracy in the same band as the
single-dimension RY encoding.
"""

from repro.experiments import ablation_encoding


def test_ablation_encoding(experiment_runner):
    result = experiment_runner(ablation_encoding, epochs=15, seed=0)
    by_encoding = {row["encoding"]: row for row in result.rows}

    dual = by_encoding["dual_angle"]
    single = by_encoding["single_angle"]

    # The headline resource saving: half the state qubits.
    assert dual["qubits_per_state"] * 2 == single["qubits_per_state"]
    assert dual["total_qubits"] < single["total_qubits"]
    # Accuracy does not collapse from packing two dimensions per qubit.
    assert dual["test_accuracy"] > single["test_accuracy"] - 0.15
