"""Loop vs. batched noisy SWAP-test sweep on the Iris hardware workload.

Measures the hot path behind the simulated-hardware figures (paper
Section 5.4): evaluating the SWAP-test fidelity of every (class, test sample)
pair for a trained Iris model on a simulated IBM-Q device.  The loop path
builds, transpiles (cache-amortised) and executes one density-matrix
simulation per fidelity through ``Backend.run`` — the behaviour before this
PR.  The batched path stacks the whole sweep into
``SwapTestFidelityEstimator.fidelity_matrix``, which the noisy backend
executes as cached transpile re-binds feeding a single vectorised
:class:`~repro.quantum.batched_density.BatchedDensityMatrix` evolution (one
einsum pass per gate and noise channel for the whole sweep) plus one stacked
multinomial shot draw.

The two paths must agree draw for draw under a shared seed (counts bit-equal,
hence identical fidelity estimates) and the batched sweep must be at least 3x
faster.  Timings are written to ``benchmarks/results/BENCH_noisy_sweep.json``
so the perf trajectory is tracked across PRs.

Runs as a pytest test (``pytest benchmarks/bench_noisy_sweep.py -s``) or
standalone (``PYTHONPATH=src python benchmarks/bench_noisy_sweep.py``).
"""

import time

import numpy as np

from repro.core.model import QuClassi
from repro.core.swap_test import SwapTestFidelityEstimator
from repro.datasets import load_iris, prepare_task
from repro.hardware import IBMQBackend

DEVICE = "ibmq_london"
SHOTS = 1024
TRAIN_EPOCHS = 10
SEED = 0
MIN_SPEEDUP = 3.0
#: Cap on the number of test samples swept (None = the full Iris test split);
#: the benchmark smoke test shrinks this so the bench script stays exercised.
SAMPLE_LIMIT = None
#: Timed repetitions per mode; the best run is reported (standard practice for
#: sub-second benchmarks, where scheduler noise dwarfs the code under test).
REPETITIONS = 3


def _trained_iris_model():
    """Train the QC-S Iris model whose noisy sweep the benchmark evaluates."""
    data = prepare_task(load_iris(), n_components=None, rng=SEED)
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=SEED)
    model.fit(data.x_train, data.y_train, epochs=TRAIN_EPOCHS, learning_rate=0.1)
    return model, data


def _noisy_sweep(mode: str, model, samples):
    """Evaluate the full noisy sweep; returns (seconds, fidelities, estimator).

    ``mode`` selects the execution path: ``"loop"`` runs one circuit per
    fidelity through ``Backend.run`` (the pre-PR behaviour — transpilation is
    already cache-amortised, but every circuit simulates its own density
    matrix), ``"batched"`` stacks every (class, sample) discriminator into
    one ``fidelity_matrix`` call.  Fresh same-seeded backends per call keep
    the two paths draw-for-draw comparable.
    """
    estimator = SwapTestFidelityEstimator(
        model.builder, backend=IBMQBackend(DEVICE, seed=SEED), shots=SHOTS
    )
    if mode == "batched":
        start = time.perf_counter()
        fidelities = estimator.fidelity_matrix(model.parameters_, samples)
        elapsed = time.perf_counter() - start
    else:
        start = time.perf_counter()
        fidelities = np.stack(
            [
                [estimator.fidelity(parameters, sample) for sample in samples]
                for parameters in model.parameters_
            ]
        )
        elapsed = time.perf_counter() - start
    return elapsed, fidelities, estimator


def run_noisy_sweep_benchmark():
    """Run both sweep modes and return the comparison payload.

    Each mode runs ``REPETITIONS`` times (fresh same-seeded backends per run,
    so every repetition draws identical samples) and reports its best time;
    an untimed warm-up first fills the builder's discriminator-circuit cache
    so both modes are measured in their steady state.
    """
    model, data = _trained_iris_model()
    samples = data.x_test if SAMPLE_LIMIT is None else data.x_test[:SAMPLE_LIMIT]
    _noisy_sweep("batched", model, samples)  # warm-up (circuit cache)
    loop_seconds, loop_fidelities, _ = min(
        (_noisy_sweep("loop", model, samples) for _ in range(REPETITIONS)),
        key=lambda run: run[0],
    )
    batched_seconds, batched_fidelities, batched_estimator = min(
        (_noisy_sweep("batched", model, samples) for _ in range(REPETITIONS)),
        key=lambda run: run[0],
    )

    return {
        "workload": {
            "dataset": "iris",
            "architecture": "s",
            "num_classes": 3,
            "num_samples": int(samples.shape[0]),
            "device": DEVICE,
            "shots": SHOTS,
            "circuits_per_mode": int(3 * samples.shape[0]),
            "train_epochs": TRAIN_EPOCHS,
            "seed": SEED,
        },
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup_vs_loop": loop_seconds / batched_seconds,
        "seed_match": bool(np.array_equal(loop_fidelities, batched_fidelities)),
        "transpile_cache": batched_estimator.backend.transpile_cache_stats,
    }


def test_noisy_sweep_batched_speedup(bench_reporter):
    payload = run_noisy_sweep_benchmark()
    path = bench_reporter("noisy_sweep", payload)
    print()
    print(
        f"noisy sweep: loop {payload['loop_seconds']:.2f}s, "
        f"batched {payload['batched_seconds']:.2f}s, "
        f"speedup {payload['speedup_vs_loop']:.1f}x -> {path}"
    )
    assert payload["seed_match"] is True
    assert payload["speedup_vs_loop"] >= MIN_SPEEDUP


if __name__ == "__main__":
    from conftest import record_bench_report

    result = run_noisy_sweep_benchmark()
    report_path = record_bench_report("noisy_sweep", result)
    print(
        f"loop {result['loop_seconds']:.2f}s  "
        f"batched {result['batched_seconds']:.2f}s  "
        f"speedup {result['speedup_vs_loop']:.1f}x  "
        f"seed match {result['seed_match']}"
    )
    print(f"report written to {report_path}")
