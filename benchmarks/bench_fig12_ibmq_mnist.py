"""Fig. 12 — 4-dimensional MNIST binary accuracy on (simulated) IBM-Q Rome.

Paper shape: the three QuClassi depths (QC-S/SD/SDE) perform similarly on the
low-dimensional data; evaluating the trained QC-S model through the noisy
device costs a few points of accuracy (more on the harder 2/9 pair); the
TFQ-like baseline trails QuClassi.
"""

import numpy as np

from repro.experiments import fig12_hardware_mnist_accuracy


def test_fig12_hardware_mnist_accuracy(experiment_runner):
    result = experiment_runner(
        fig12_hardware_mnist_accuracy,
        pairs=((3, 4), (6, 9), (2, 9)),
        architectures=("s", "sd", "sde"),
        samples_per_digit=40,
        epochs=12,
        shots=8192,
        device="ibmq_rome",
        seed=0,
    )

    for row in result.rows:
        # The simulator architectures all beat chance comfortably.
        for column in ("QC-S", "QC-SD", "QC-SDE"):
            assert row[column] > 0.6
        # Depth adds little on 4-dimensional data (paper's observation).
        depths = [row["QC-S"], row["QC-SD"], row["QC-SDE"]]
        assert max(depths) - min(depths) < 0.25
        # Hardware evaluation degrades gracefully, not catastrophically.
        assert row["IBM-Q"] > 0.5
        assert row["IBM-Q"] <= max(depths) + 0.1
