"""Loop vs. batched full-gradient sweep on the Iris workload.

Measures the hot path behind every training figure: the parameter-shift
gradient of the fidelity cross-entropy, evaluated for every class on the full
Iris training set with exact (``shots=None``) fidelities, once per epoch for
the paper's 25-epoch configuration.  The loop path evaluates the loss ``2P``
times per gradient (rebuilding the trained statevector gate-by-gate each
time); the batched path stacks all ``2P`` shifted parameter vectors into one
:class:`~repro.quantum.batched.BatchedStatevector` pass.

The two trajectories must agree to 1e-10 (same shifts, same reduction order)
and the batched sweep must be at least 5x faster.  Timings are written to
``benchmarks/results/BENCH_gradient_sweep.json`` so the perf trajectory is
tracked across PRs.

Runs as a pytest test (``pytest benchmarks/bench_gradient_sweep.py -s``, no
pytest-benchmark required) or standalone
(``PYTHONPATH=src python benchmarks/bench_gradient_sweep.py``).
"""

import time

import numpy as np

from repro.core.cost import FidelityCrossEntropy
from repro.core.gradient import EpochScaledShiftRule
from repro.core.model import QuClassi
from repro.datasets import load_iris, prepare_task

EPOCHS = 25
LEARNING_RATE = 0.01
SEED = 0
MIN_SPEEDUP = 5.0


def _seed_loop_loss(estimator, cost, features, targets):
    """Loss closure replicating the seed implementation exactly.

    The seed's ``AnalyticFidelityEstimator.fidelities`` rebuilt the trained
    statevector gate-by-gate per evaluation and restacked the (per-row cached)
    data states into a fresh matrix every time — no stacked-matrix memoisation
    and no batching.  Kept here verbatim as the perf baseline every PR's
    numbers are measured against.
    """

    def loss(parameter_vector):
        omega = estimator.trained_statevector(parameter_vector).data
        data_matrix = np.stack(
            [estimator.data_statevector(row).data for row in features]
        )
        fidelities = np.abs(data_matrix.conj() @ omega) ** 2
        return cost(fidelities, targets)

    return loss


def _gradient_sweep(mode: str, epochs: int = EPOCHS):
    """Run the full-gradient sweep along the real SGD trajectory.

    ``mode`` selects the gradient evaluation: ``"seed_loop"`` (the seed
    implementation, restacking the data matrix per loss evaluation),
    ``"loop"`` (the current per-shift loop with the memoised data-state
    matrix), or ``"batched"`` (the vectorised multi-loss sweep).  Returns
    (gradient_seconds, final_weights, per_epoch_mean_loss); only the gradient
    evaluations are timed — the SGD update and the per-epoch loss read-out
    (identical across modes) stay outside the timer.
    """
    data = prepare_task(load_iris(), n_components=None, rng=SEED)
    features, labels = data.x_train, data.y_train
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=SEED)
    estimator = model.estimator
    rule = EpochScaledShiftRule()
    cost = FidelityCrossEntropy()

    elapsed = 0.0
    epoch_losses = []
    for epoch in range(1, epochs + 1):
        for class_index in range(model.num_classes):
            targets = (labels == class_index).astype(float)
            parameters = model.parameters_[class_index]
            if mode == "batched":

                def multi_loss(parameter_matrix):
                    fidelity_matrix = estimator.fidelity_matrix(parameter_matrix, features)
                    return cost.batched(fidelity_matrix, targets)

                start = time.perf_counter()
                gradient = rule.gradient_batched(multi_loss, parameters, epoch=epoch)
                elapsed += time.perf_counter() - start
            else:
                if mode == "seed_loop":
                    loss = _seed_loop_loss(estimator, cost, features, targets)
                else:

                    def loss(parameter_vector):
                        return cost(
                            estimator.fidelities(parameter_vector, features), targets
                        )

                start = time.perf_counter()
                gradient = rule.gradient(loss, parameters, epoch=epoch)
                elapsed += time.perf_counter() - start
            model.parameters_[class_index] = parameters - LEARNING_RATE * gradient
        epoch_losses.append(
            float(
                np.mean(
                    [
                        cost(
                            estimator.fidelities(model.parameters_[c], features),
                            (labels == c).astype(float),
                        )
                        for c in range(model.num_classes)
                    ]
                )
            )
        )
    return elapsed, model.get_weights(), epoch_losses


def run_gradient_sweep_benchmark(epochs: int = EPOCHS):
    """Run all three sweep modes and return the comparison payload."""
    seed_seconds, seed_weights, seed_losses = _gradient_sweep("seed_loop", epochs)
    loop_seconds, loop_weights, loop_losses = _gradient_sweep("loop", epochs)
    batched_seconds, batched_weights, batched_losses = _gradient_sweep("batched", epochs)
    return {
        "workload": {
            "dataset": "iris",
            "num_features": 4,
            "num_classes": 3,
            "architecture": "s",
            "epochs": epochs,
            "learning_rate": LEARNING_RATE,
            "seed": SEED,
            "fidelities": "exact",
        },
        "seed_loop_seconds": seed_seconds,
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup_vs_seed": seed_seconds / batched_seconds,
        "speedup_vs_loop": loop_seconds / batched_seconds,
        "max_weight_diff": float(
            max(
                np.abs(seed_weights - batched_weights).max(),
                np.abs(loop_weights - batched_weights).max(),
            )
        ),
        "max_epoch_loss_diff": float(
            max(
                np.abs(np.asarray(seed_losses) - np.asarray(batched_losses)).max(),
                np.abs(np.asarray(loop_losses) - np.asarray(batched_losses)).max(),
            )
        ),
        "final_mean_loss": batched_losses[-1],
    }


def test_gradient_sweep_batched_speedup(bench_reporter):
    payload = run_gradient_sweep_benchmark()
    path = bench_reporter("gradient_sweep", payload)
    print()
    print(
        f"gradient sweep: seed loop {payload['seed_loop_seconds']:.2f}s, "
        f"current loop {payload['loop_seconds']:.2f}s, "
        f"batched {payload['batched_seconds']:.2f}s, "
        f"speedup vs seed {payload['speedup_vs_seed']:.1f}x -> {path}"
    )
    assert payload["max_weight_diff"] < 1e-10
    assert payload["max_epoch_loss_diff"] < 1e-10
    assert payload["speedup_vs_seed"] >= MIN_SPEEDUP


if __name__ == "__main__":
    from conftest import record_bench_report

    result = run_gradient_sweep_benchmark()
    report_path = record_bench_report("gradient_sweep", result)
    print(
        f"seed loop {result['seed_loop_seconds']:.2f}s  "
        f"current loop {result['loop_seconds']:.2f}s  "
        f"batched {result['batched_seconds']:.2f}s  "
        f"speedup vs seed {result['speedup_vs_seed']:.1f}x  "
        f"max weight diff {result['max_weight_diff']:.2e}"
    )
    print(f"report written to {report_path}")
