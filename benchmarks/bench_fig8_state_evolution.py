"""Fig. 8 — Bloch-sphere evolution of the learned state (digit 0 vs 6).

Paper shape: the per-class learned state starts at a random point on the
Bloch sphere and rotates towards its class's data over training, so the
fidelity between the learned state and the class's mean data state increases.
"""

from repro.experiments import fig8_state_evolution


def test_fig8_state_evolution(experiment_runner):
    result = experiment_runner(
        fig8_state_evolution, digits=(0, 6), epochs=10, samples_per_digit=40, seed=0
    )

    # Shape check: training moved the state (non-zero rotation on at least one
    # qubit) and increased the mean fidelity to the class data.
    assert any(row["rotation_angle"] > 0.05 for row in result.rows)
    assert result.metadata["trained_mean_fidelity"] > result.metadata["initial_mean_fidelity"]
