"""Fig. 6a — Iris multi-class training loss per class (QC-S, 25 epochs).

Paper shape: every class's loss decreases smoothly over 25 epochs and the
three curves converge to low values without oscillation (the paper credits
the epoch-scaled gradient shift for the stability).
"""

from repro.experiments import fig6a_multiclass_loss


def test_fig6a_iris_multiclass_loss(experiment_runner):
    result = experiment_runner(fig6a_multiclass_loss, epochs=25, learning_rate=0.1, seed=0)

    for series in result.series:
        # Shape check: each per-class loss curve ends below where it started.
        assert series.y[-1] < series.y[0]
    mean_series = result.series_by_name("mean_loss")
    assert mean_series.y[-1] < 0.6
