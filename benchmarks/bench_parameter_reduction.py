"""Text §5.3 — parameter-count reduction vs similarly accurate classical DNNs.

Paper shape: QuClassi reaches accuracy in the same band as DNNs that use one
to two orders of magnitude more parameters (97.37 % reduction for the binary
task, 96.33 % for 5-class in the paper).
"""

from repro.experiments import parameter_reduction


def test_parameter_reduction(experiment_runner):
    result = experiment_runner(
        parameter_reduction,
        binary_pair=(3, 6),
        multiclass_task=(0, 1, 3, 6, 9),
        samples_per_digit=40,
        epochs=20,
        seed=0,
    )

    for row in result.rows:
        assert row["quclassi_params"] < row["dnn_params"]
        assert row["parameter_reduction_percent"] > 85.0
        # Accuracy stays in the same band as the much larger classical model.
        assert row["quclassi_accuracy"] > row["dnn_accuracy"] - 0.25
