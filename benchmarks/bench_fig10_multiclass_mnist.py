"""Fig. 10 — multi-class synthetic-MNIST comparison (3, 4, 5 and 10 classes).

Paper shape: QuClassi stays well above chance as the class count grows and
its margin over the QF-pNet-like baseline widens with more classes (the
paper's headline 10-class result); accuracy decreases monotonically-ish with
the number of classes for every model.
"""

import numpy as np

from repro.experiments import fig10_multiclass_classification


def test_fig10_multiclass_classification(experiment_runner):
    result = experiment_runner(
        fig10_multiclass_classification,
        tasks=((0, 3, 6), (1, 3, 6), (0, 3, 6, 9), (0, 1, 3, 6, 9), tuple(range(10))),
        samples_per_digit=40,
        epochs=15,
        dnn_budgets=(306, 1308),
        seed=0,
    )

    for row in result.rows:
        chance = 1.0 / row["num_classes"]
        assert row["QC-S"] > chance + 0.15, f"task {row['task']} barely beats chance"

    ten_class = next(row for row in result.rows if row["num_classes"] == 10)
    three_class = [row for row in result.rows if row["num_classes"] == 3]
    # Accuracy degrades with class count but stays useful (paper: 78.7% at 10 classes).
    assert ten_class["QC-S"] < max(row["QC-S"] for row in three_class)
    assert ten_class["QC-S"] > 0.3

    # QuClassi's margin over the QF-pNet-like surrogate does not collapse with class count.
    margins = [row["QC-S"] - row["QF-pNet-like"] for row in result.rows]
    assert margins[-1] >= min(margins[:2]) - 0.2
