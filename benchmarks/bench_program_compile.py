"""Compile-once sweep programs: repeat-sweep speedup and tiled memory bound.

Three claims of the ``SweepProgram`` refactor are measured here and recorded
in ``benchmarks/results/BENCH_program_compile.json``:

1. **Repeat-sweep noisy speedup from precomposition.**  The first noisy sweep
   of a structure pays for transpilation, program compilation, and the
   per-gate noise-superoperator precomposition; every repeat sweep executes
   straight from the caches — no transpile, no circuit binding, no per-gate
   Kraus-channel resolution, one precomposed superoperator contraction per
   gate.  The benchmark times a cold first sweep against warm repeats on a
   simulated IBM-Q device, and also against the ``run_batch`` path (which
   still materialises one bound circuit per element) to isolate the
   program-sweep win.

2. **MNIST 17-qubit peak-memory bound from two-axis tiling.**  The 16-feature
   synthetic-MNIST task builds 17-qubit SWAP-test discriminators
   (``2**17`` amplitudes per element), so an untiled (shift-row x sample)
   sweep materialises hundreds of MiB.  With a ``TilePlan`` derived from
   ``max_batch_amplitudes``, the same sweep streams through bounded tiles;
   tracemalloc peaks for both modes are recorded and the tiled peak must
   stay under the untiled requirement.

3. **Certified plan-time fusion.**  With ``REPRO_OPTIMIZE_PROGRAMS=1`` the
   transpile template serves a fused program whose runs of fixed gates cost
   one precomposed superoperator contraction each instead of one per source
   gate; the VER4xx translation validator certifies every rewrite, the
   contraction drop is recorded through the VER2xx cost model, and the
   noisy Iris sweep stays bit-identical to the unfused path.

Runs as a pytest test (``pytest benchmarks/bench_program_compile.py -s``) or
standalone (``PYTHONPATH=src python benchmarks/bench_program_compile.py``).
"""

import os
import time
import tracemalloc

import numpy as np

from repro.analysis.cost import estimate_cost, verify_cost
from repro.core.model import QuClassi
from repro.core.swap_test import SwapTestFidelityEstimator
from repro.datasets import generate_synthetic_mnist, load_iris, prepare_task
from repro.hardware import IBMQBackend
from repro.quantum.backend import SampledBackend
from repro.quantum.program import (
    OPTIMIZE_PROGRAMS_ENV,
    SweepProgram,
    TilePlan,
)

DEVICE = "ibmq_london"
SHOTS = 1024
TRAIN_EPOCHS = 5
SEED = 0
#: Warm repetitions of the noisy sweep; the best time is reported.
REPEAT_SWEEPS = 3
MIN_REPEAT_SPEEDUP = 1.2

#: MNIST tiling workload: parameter-shift rows x test samples at 17 qubits.
MNIST_ROWS = 6
MNIST_SAMPLES = 24
#: Amplitude budget for the tiled sweep (complex entries in flight).
MNIST_BUDGET_AMPLITUDES = 2**21


def _trained_iris_model():
    """Train the QC-S Iris model whose noisy repeat sweep is measured."""
    data = prepare_task(load_iris(), n_components=None, rng=SEED)
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=SEED)
    model.fit(data.x_train, data.y_train, epochs=TRAIN_EPOCHS, learning_rate=0.1)
    return model, data


def _timed_sweep(estimator, parameter_matrix, samples):
    start = time.perf_counter()
    fidelities = estimator.fidelity_matrix(parameter_matrix, samples)
    return time.perf_counter() - start, fidelities


def run_repeat_sweep_benchmark():
    """Cold-vs-warm noisy sweep timings through the compiled program path."""
    model, data = _trained_iris_model()
    samples = data.x_test

    # Program path: cold first sweep (transpile + compile + precompose),
    # then warm repeats straight from the caches.
    estimator = SwapTestFidelityEstimator(
        model.builder, backend=IBMQBackend(DEVICE, seed=SEED), shots=SHOTS
    )
    cold_seconds, cold_fidelities = _timed_sweep(estimator, model.parameters_, samples)
    warm_runs = [
        _timed_sweep(estimator, model.parameters_, samples)
        for _ in range(REPEAT_SWEEPS)
    ]
    warm_seconds = min(run[0] for run in warm_runs)
    engine = estimator.backend._simulator._program_engine()

    # run_batch path on a fresh same-seeded backend: the pre-refactor hot
    # path that still builds and binds one circuit per sweep element.  The
    # first call warms its caches; the repeat is measured.
    legacy = SwapTestFidelityEstimator(
        model.builder, backend=IBMQBackend(DEVICE, seed=SEED), shots=SHOTS
    )
    legacy.backend.supports_programs = False  # force the chunked run_batch path
    legacy_first_seconds, legacy_fidelities = _timed_sweep(
        legacy, model.parameters_, samples
    )
    legacy_seconds = min(
        _timed_sweep(legacy, model.parameters_, samples)[0]
        for _ in range(REPEAT_SWEEPS)
    )

    return {
        "workload": {
            "dataset": "iris",
            "architecture": "s",
            "num_classes": 3,
            "num_samples": int(samples.shape[0]),
            "device": DEVICE,
            "shots": SHOTS,
            "train_epochs": TRAIN_EPOCHS,
            "seed": SEED,
        },
        "cold_sweep_seconds": cold_seconds,
        "warm_sweep_seconds": warm_seconds,
        "repeat_speedup": cold_seconds / warm_seconds,
        "runbatch_first_seconds": legacy_first_seconds,
        "runbatch_warm_seconds": legacy_seconds,
        "speedup_vs_runbatch": legacy_seconds / warm_seconds,
        # The first sweeps of two same-seeded backends must agree draw for
        # draw no matter which execution path they took.
        "seed_match_vs_runbatch": bool(
            np.array_equal(cold_fidelities, legacy_fidelities)
        ),
        "transpile_cache": estimator.backend.transpile_cache_stats,
        # One superoperator plan compiled for the whole repeat series — the
        # "no per-gate channel resolution on cache hits" guarantee.
        "noise_plans_compiled": int(engine.plans_compiled),
    }


def run_mnist_tiling_benchmark(
    rows: int = None, samples: int = None, budget_amplitudes: int = None
):
    """Peak-memory comparison of the tiled vs untiled 17-qubit MNIST sweep."""
    rows = MNIST_ROWS if rows is None else rows
    samples = MNIST_SAMPLES if samples is None else samples
    budget_amplitudes = (
        MNIST_BUDGET_AMPLITUDES if budget_amplitudes is None else budget_amplitudes
    )
    # Enough raw samples that the train split supports 16 PCA components,
    # however small the swept sample count is shrunk to.
    samples_per_digit = max(samples, 16)
    data = prepare_task(
        generate_synthetic_mnist(
            digits=(3, 6), samples_per_digit=samples_per_digit, rng=SEED
        ),
        n_components=16,
        rng=SEED,
    )
    model = QuClassi(num_features=16, num_classes=2, architecture="s", seed=SEED)
    rng = np.random.default_rng(SEED)
    parameter_matrix = rng.uniform(
        0, np.pi, size=(rows, model.parameters_per_class)
    )
    features = data.x_train[:samples]
    num_qubits = model.num_qubits
    element_amplitudes = 2**num_qubits
    untiled_amplitudes = rows * features.shape[0] * element_amplitudes

    def peak_sweep(max_batch_amplitudes):
        estimator = SwapTestFidelityEstimator(
            model.builder,
            backend=SampledBackend(shots=SHOTS, seed=SEED),
            shots=SHOTS,
            max_batch_amplitudes=max_batch_amplitudes,
        )
        tracemalloc.start()
        start = time.perf_counter()
        fidelities = estimator.fidelity_matrix(parameter_matrix, features)
        seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak, seconds, fidelities

    tiled_peak, tiled_seconds, tiled = peak_sweep(budget_amplitudes)
    untiled_peak, untiled_seconds, untiled = peak_sweep(2 * untiled_amplitudes)

    # Static cost-model prediction of the same tiled sweep (repro.analysis.cost):
    # recorded beside the tracemalloc measurement so the report shows how
    # tight the VER2xx verifier's model is on this workload.
    program = SweepProgram.compile(
        model.builder.build(features[0], parameter_matrix[0]),
        bind_floats=True,
        name="mnist-16-s:discriminator",
    )
    plan = TilePlan.for_circuit_sweep(
        rows, features.shape[0], element_amplitudes, budget_amplitudes
    )
    predicted = estimate_cost(program, plan)
    cost_findings = [d.code for d in verify_cost(program, plan)]

    return {
        "workload": {
            "dataset": "synthetic_mnist",
            "pair": [3, 6],
            "num_features": 16,
            "discriminator_qubits": int(num_qubits),
            "rows": int(rows),
            "samples": int(features.shape[0]),
            "shots": SHOTS,
            "seed": SEED,
        },
        "budget_amplitudes": int(budget_amplitudes),
        "budget_bytes": int(budget_amplitudes * 16),
        "untiled_requirement_bytes": int(untiled_amplitudes * 16),
        "tiled_peak_bytes": int(tiled_peak),
        "untiled_peak_bytes": int(untiled_peak),
        "predicted_tiled_peak_bytes": int(predicted.peak_bytes),
        "predicted_vs_measured": float(predicted.peak_bytes / tiled_peak),
        # VER205 is expected: the 2**21 budget holds a 2**17 statevector
        # element but not one 4**17 density element.
        "cost_findings": cost_findings,
        "peak_reduction": float(untiled_peak / tiled_peak),
        "tiled_seconds": tiled_seconds,
        "untiled_seconds": untiled_seconds,
        "seed_match_tiled_vs_untiled": bool(np.array_equal(tiled, untiled)),
    }


def run_fusion_benchmark():
    """Certified plan-time fusion on the noisy Iris repeat sweep.

    Measures the third claim: with ``REPRO_OPTIMIZE_PROGRAMS=1`` the cached
    transpile template serves a certified fused program, every fused run of
    fixed gates costs one superoperator contraction instead of one per
    source gate, and — because the rewrite is certified equivalent and the
    readout sampling consumes the RNG identically — the sweep numbers stay
    bit-identical to the unfused path on same-seeded backends.
    """
    from repro.analysis.diagnostics import Severity
    from repro.analysis.equiv import (
        verify_fused_step,
        verify_fused_superoperator_plan,
        verify_translation,
    )
    from repro.hardware.calibration import get_calibration
    from repro.quantum.program import DensitySuperoperatorEngine
    from repro.quantum.transpiler import TranspileCache

    model, data = _trained_iris_model()
    samples = data.x_test

    plain = SwapTestFidelityEstimator(
        model.builder, backend=IBMQBackend(DEVICE, seed=SEED), shots=SHOTS
    )
    _, plain_fidelities = _timed_sweep(plain, model.parameters_, samples)
    plain_warm_seconds = min(
        _timed_sweep(plain, model.parameters_, samples)[0]
        for _ in range(REPEAT_SWEEPS)
    )

    previous = os.environ.get(OPTIMIZE_PROGRAMS_ENV)
    os.environ[OPTIMIZE_PROGRAMS_ENV] = "1"
    try:
        fused_estimator = SwapTestFidelityEstimator(
            model.builder, backend=IBMQBackend(DEVICE, seed=SEED), shots=SHOTS
        )
        _, fused_fidelities = _timed_sweep(
            fused_estimator, model.parameters_, samples
        )
        fused_warm_seconds = min(
            _timed_sweep(fused_estimator, model.parameters_, samples)[0]
            for _ in range(REPEAT_SWEEPS)
        )
    finally:
        if previous is None:
            os.environ.pop(OPTIMIZE_PROGRAMS_ENV, None)
        else:
            os.environ[OPTIMIZE_PROGRAMS_ENV] = previous

    # Static side: re-derive the template's fused program and certify every
    # rewrite explicitly (the execution path above already did, loudly).
    noise = get_calibration(DEVICE).noise_model()
    cache = TranspileCache()
    entry, _ = cache.template(model.builder.build(samples[0], model.parameters_[0]))
    source = entry.ensure_program(optimize=False)
    fused = entry.ensure_program(optimize=True, noise_model=noise)
    diagnostics = list(verify_translation(source, fused))
    engine = DensitySuperoperatorEngine(noise)
    for step, plan in zip(fused.steps, engine.step_plans(fused)):
        if step.fused_from:
            diagnostics.extend(verify_fused_step(step, program_name=fused.name))
            diagnostics.extend(
                verify_fused_superoperator_plan(
                    step, plan[1], noise, program_name=fused.name
                )
            )
    error_codes = sorted(
        {d.code for d in diagnostics if d.severity is Severity.ERROR}
    )

    # Contraction counts through the VER2xx cost model: fusion shrinks the
    # step sequence, and contractions scale with it per tile.
    rows = int(model.parameters_.shape[0])
    element_amplitudes = 2**source.num_qubits
    tile_plan = TilePlan.for_circuit_sweep(
        rows,
        int(samples.shape[0]),
        element_amplitudes,
        rows * int(samples.shape[0]) * element_amplitudes,
    )
    unfused_cost = estimate_cost(source, tile_plan, engine="density")
    fused_cost = estimate_cost(fused, tile_plan, engine="density")

    return {
        "workload": {
            "dataset": "iris",
            "architecture": "s",
            "device": DEVICE,
            "shots": SHOTS,
            "rows": rows,
            "num_samples": int(samples.shape[0]),
            "seed": SEED,
        },
        "certified": not error_codes,
        "codes": error_codes,
        "steps_unfused": len(source.steps),
        "steps_fused": len(fused.steps),
        "fused_steps": sum(1 for step in fused.steps if step.fused_from),
        "contractions_unfused": int(unfused_cost.contractions),
        "contractions_fused": int(fused_cost.contractions),
        "contraction_reduction": float(
            unfused_cost.contractions / fused_cost.contractions
        ),
        "plain_warm_seconds": plain_warm_seconds,
        "fused_warm_seconds": fused_warm_seconds,
        "seed_match": bool(np.array_equal(fused_fidelities, plain_fidelities)),
    }


def run_program_compile_benchmark():
    """Run all measurements and return the combined payload."""
    return {
        "repeat_sweep": run_repeat_sweep_benchmark(),
        "mnist_tiling": run_mnist_tiling_benchmark(),
        "fusion": run_fusion_benchmark(),
    }


def test_program_compile_benchmark(bench_reporter):
    payload = run_program_compile_benchmark()
    path = bench_reporter("program_compile", payload)
    repeat = payload["repeat_sweep"]
    tiling = payload["mnist_tiling"]
    fusion = payload["fusion"]
    print()
    print(
        f"noisy repeat sweep: cold {repeat['cold_sweep_seconds']:.2f}s, warm "
        f"{repeat['warm_sweep_seconds']:.2f}s ({repeat['repeat_speedup']:.1f}x), "
        f"vs run_batch {repeat['speedup_vs_runbatch']:.1f}x; MNIST 17q tiled peak "
        f"{tiling['tiled_peak_bytes'] / 2**20:.0f} MiB vs untiled "
        f"{tiling['untiled_peak_bytes'] / 2**20:.0f} MiB; fusion "
        f"{fusion['contractions_unfused']} -> {fusion['contractions_fused']} "
        f"contractions -> {path}"
    )
    assert repeat["seed_match_vs_runbatch"] is True
    assert repeat["noise_plans_compiled"] == 1
    assert repeat["repeat_speedup"] >= MIN_REPEAT_SPEEDUP
    assert tiling["seed_match_tiled_vs_untiled"] is True
    assert tiling["tiled_peak_bytes"] < tiling["untiled_requirement_bytes"]
    assert tiling["cost_findings"] == ["VER205"]
    assert fusion["certified"] is True
    assert fusion["codes"] == []
    assert fusion["fused_steps"] > 0
    assert fusion["contractions_fused"] < fusion["contractions_unfused"]
    assert fusion["seed_match"] is True


if __name__ == "__main__":
    from conftest import record_bench_report

    result = run_program_compile_benchmark()
    report_path = record_bench_report("program_compile", result)
    repeat = result["repeat_sweep"]
    tiling = result["mnist_tiling"]
    print(
        f"cold {repeat['cold_sweep_seconds']:.2f}s  warm "
        f"{repeat['warm_sweep_seconds']:.2f}s  repeat speedup "
        f"{repeat['repeat_speedup']:.1f}x  vs run_batch "
        f"{repeat['speedup_vs_runbatch']:.1f}x"
    )
    print(
        f"MNIST 17q: tiled peak {tiling['tiled_peak_bytes'] / 2**20:.0f} MiB  "
        f"untiled peak {tiling['untiled_peak_bytes'] / 2**20:.0f} MiB  "
        f"reduction {tiling['peak_reduction']:.1f}x"
    )
    fusion = result["fusion"]
    print(
        f"fusion: {fusion['steps_unfused']} -> {fusion['steps_fused']} steps  "
        f"{fusion['contractions_unfused']} -> {fusion['contractions_fused']} "
        f"contractions  certified={fusion['certified']}  "
        f"seed_match={fusion['seed_match']}"
    )
    print(f"report written to {report_path}")
