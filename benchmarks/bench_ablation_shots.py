"""Ablation — SWAP-test fidelity estimation error vs shot count.

Design-choice check from DESIGN.md: the analytic estimator used for the
simulator figures is the infinite-shot limit of the SWAP-test circuit; the
estimation error shrinks roughly as 1/sqrt(shots), which is what makes the
paper's 8000-shot hardware runs viable.
"""

from repro.experiments import ablation_swap_test_shots


def test_ablation_swap_test_shots(experiment_runner):
    result = experiment_runner(
        ablation_swap_test_shots, shots_grid=(128, 512, 2048, 8192, None), seed=0
    )
    rows = result.rows
    errors = [row["mean_absolute_error"] for row in rows]

    # Error decreases as shots increase and vanishes in the exact limit.
    assert errors[0] > errors[-2] > errors[-1]
    assert errors[-1] < 1e-9
    # 8192 shots (the paper's scale) estimates fidelities to about a percent.
    assert errors[-2] < 0.03
