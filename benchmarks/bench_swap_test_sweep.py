"""Loop vs. batched SWAP-test sweep on the Iris shots-ablation workload.

Measures the hot path behind the shots ablation and the simulated-hardware
figures: evaluating the SWAP-test fidelity of every (class, test sample) pair
for a trained Iris model across the paper's shot grid.  The loop path builds
and executes one discriminator circuit per fidelity through
``Backend.run`` — the seed implementation this PR's numbers are measured
against.  The batched path stacks the whole sweep into
``SwapTestFidelityEstimator.fidelity_matrix``, which the statevector backend
executes as one vectorised :class:`~repro.quantum.batched.BatchedStatevector`
pass per chunk with a single stacked RNG draw for the ancilla bits.

The two paths must agree exactly for ``shots=None`` (to 1e-12) and
draw-for-draw for sampled grid points under a shared seed, and the batched
sweep must be at least 5x faster.  Timings are written to
``benchmarks/results/BENCH_swap_test_sweep.json`` so the perf trajectory is
tracked across PRs.

Runs as a pytest test (``pytest benchmarks/bench_swap_test_sweep.py -s``) or
standalone (``PYTHONPATH=src python benchmarks/bench_swap_test_sweep.py``).
"""

import time

import numpy as np

from repro.core.model import QuClassi
from repro.core.swap_test import SwapTestFidelityEstimator
from repro.datasets import load_iris, prepare_task
from repro.hardware import IBMQBackend
from repro.quantum.backend import IdealBackend

SHOTS_GRID = (128, 512, 2048, 8192, None)
TRAIN_EPOCHS = 10
SEED = 0
MIN_SPEEDUP = 5.0
#: Timed repetitions per mode; the best run is reported (standard practice for
#: sub-second benchmarks, where scheduler noise dwarfs the code under test).
REPETITIONS = 3


def _trained_iris_model():
    """Train the QC-S Iris model whose sweep the ablation evaluates."""
    data = prepare_task(load_iris(), n_components=None, rng=SEED)
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=SEED)
    model.fit(data.x_train, data.y_train, epochs=TRAIN_EPOCHS, learning_rate=0.1)
    return model, data


def _shots_ablation_sweep(mode: str, model, samples):
    """Evaluate the full shots-ablation sweep; returns (seconds, estimates).

    ``mode`` selects the execution path: ``"loop"`` runs one circuit per
    fidelity through ``Backend.run`` (the seed behaviour), ``"batched"``
    stacks every (class, sample) discriminator of a grid point into one
    ``fidelity_matrix`` call.  Fresh same-seeded backends per grid point keep
    the two paths draw-for-draw comparable.
    """
    elapsed = 0.0
    estimates = {}
    for shots in SHOTS_GRID:
        estimator = SwapTestFidelityEstimator(
            model.builder, backend=IdealBackend(seed=SEED), shots=shots
        )
        if mode == "batched":
            start = time.perf_counter()
            grid_point = estimator.fidelity_matrix(model.parameters_, samples)
            elapsed += time.perf_counter() - start
        else:
            start = time.perf_counter()
            grid_point = np.stack(
                [
                    [estimator.fidelity(parameters, sample) for sample in samples]
                    for parameters in model.parameters_
                ]
            )
            elapsed += time.perf_counter() - start
        estimates["exact" if shots is None else shots] = grid_point
    return elapsed, estimates


def _noisy_sweep_check(model, samples):
    """Equivalence + transpile-cache stats for a small noisy-backend sweep."""
    batched_estimator = SwapTestFidelityEstimator(
        model.builder, backend=IBMQBackend("ibmq_london", seed=SEED), shots=1024
    )
    start = time.perf_counter()
    batched = batched_estimator.fidelity_matrix(model.parameters_, samples)
    batched_seconds = time.perf_counter() - start
    loop_estimator = SwapTestFidelityEstimator(
        model.builder, backend=IBMQBackend("ibmq_london", seed=SEED), shots=1024
    )
    start = time.perf_counter()
    loop = np.stack(
        [
            [loop_estimator.fidelity(parameters, sample) for sample in samples]
            for parameters in model.parameters_
        ]
    )
    loop_seconds = time.perf_counter() - start
    return {
        "noisy_backend": "ibmq_london",
        "noisy_circuits": int(batched.size),
        "noisy_loop_seconds": loop_seconds,
        "noisy_batched_seconds": batched_seconds,
        "noisy_seed_match": bool(np.array_equal(batched, loop)),
        "noisy_transpile_cache": batched_estimator.backend.transpile_cache_stats,
    }


def run_swap_test_sweep_benchmark():
    """Run both sweep modes and return the comparison payload.

    Each mode runs ``REPETITIONS`` times (fresh same-seeded backends per run,
    so every repetition draws identical samples) and reports its best time;
    an untimed warm-up first fills the builder's discriminator-circuit cache
    so both modes are measured in their steady state.
    """
    model, data = _trained_iris_model()
    samples = data.x_test
    _shots_ablation_sweep("batched", model, samples)  # warm-up (circuit cache)
    loop_seconds, loop_estimates = min(
        (_shots_ablation_sweep("loop", model, samples) for _ in range(REPETITIONS)),
        key=lambda run: run[0],
    )
    batched_seconds, batched_estimates = min(
        (_shots_ablation_sweep("batched", model, samples) for _ in range(REPETITIONS)),
        key=lambda run: run[0],
    )

    exact_diff = float(
        np.max(np.abs(loop_estimates["exact"] - batched_estimates["exact"]))
    )
    sampled_identical = all(
        np.array_equal(loop_estimates[key], batched_estimates[key])
        for key in loop_estimates
        if key != "exact"
    )
    payload = {
        "workload": {
            "dataset": "iris",
            "architecture": "s",
            "num_classes": 3,
            "num_samples": int(samples.shape[0]),
            "shots_grid": ["exact" if s is None else s for s in SHOTS_GRID],
            "circuits_per_mode": int(len(SHOTS_GRID) * 3 * samples.shape[0]),
            "train_epochs": TRAIN_EPOCHS,
            "seed": SEED,
        },
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup_vs_loop": loop_seconds / batched_seconds,
        "exact_max_diff": exact_diff,
        "sampled_seed_match": bool(sampled_identical),
    }
    payload.update(_noisy_sweep_check(model, samples[:4]))
    return payload


def test_swap_test_sweep_batched_speedup(bench_reporter):
    payload = run_swap_test_sweep_benchmark()
    path = bench_reporter("swap_test_sweep", payload)
    print()
    print(
        f"swap-test sweep: loop {payload['loop_seconds']:.2f}s, "
        f"batched {payload['batched_seconds']:.2f}s, "
        f"speedup {payload['speedup_vs_loop']:.1f}x -> {path}"
    )
    assert payload["exact_max_diff"] < 1e-12
    assert payload["sampled_seed_match"] is True
    assert payload["noisy_seed_match"] is True
    assert payload["speedup_vs_loop"] >= MIN_SPEEDUP


if __name__ == "__main__":
    from conftest import record_bench_report

    result = run_swap_test_sweep_benchmark()
    report_path = record_bench_report("swap_test_sweep", result)
    print(
        f"loop {result['loop_seconds']:.2f}s  "
        f"batched {result['batched_seconds']:.2f}s  "
        f"speedup {result['speedup_vs_loop']:.1f}x  "
        f"exact max diff {result['exact_max_diff']:.2e}  "
        f"sampled seed match {result['sampled_seed_match']}"
    )
    print(f"report written to {report_path}")
