"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``rounds=1``): the quantity
of interest is the reproduced figure/table itself, not the timing statistics,
although pytest-benchmark still records the wall-clock cost of regenerating
each figure.
"""

import json
import os
import sys
import time

# Make ``src/`` importable when the package is not installed (offline checkouts).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402

from repro.experiments.reporting import format_experiment  # noqa: E402


_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def run_experiment(benchmark, experiment_fn, **kwargs):
    """Run one figure-reproduction function under pytest-benchmark.

    The paper-style rows/series are printed (visible with ``pytest -s``) and
    also written to ``benchmarks/results/<experiment_id>.txt`` so a plain
    ``--benchmark-only`` run still leaves the reproduced tables on disk.
    """
    result = benchmark.pedantic(lambda: experiment_fn(**kwargs), rounds=1, iterations=1)
    text = format_experiment(result)
    print()
    print(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, f"{result.experiment_id}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return result


@pytest.fixture()
def experiment_runner(benchmark):
    """Fixture exposing :func:`run_experiment` bound to the current benchmark."""

    def runner(experiment_fn, **kwargs):
        return run_experiment(benchmark, experiment_fn, **kwargs)

    return runner


def record_bench_report(name, payload):
    """Write a machine-readable ``BENCH_<name>.json`` perf report.

    Used by the performance benchmarks (``bench_gradient_sweep`` onwards) so
    the perf trajectory of the hot paths is tracked as a JSON series next to
    the figure-reproduction text reports.  Returns the path written.
    """
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"BENCH_{name}.json")
    enriched = dict(payload)
    enriched.setdefault("benchmark", name)
    enriched.setdefault("recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(enriched, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture()
def bench_reporter():
    """Fixture exposing :func:`record_bench_report` (no pytest-benchmark needed)."""
    return record_bench_report
