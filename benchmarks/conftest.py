"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``rounds=1``): the quantity
of interest is the reproduced figure/table itself, not the timing statistics,
although pytest-benchmark still records the wall-clock cost of regenerating
each figure.

Every figure run also leaves a machine-readable perf point: the experiment's
rows/series plus its wall-clock seconds are written to
``benchmarks/results/BENCH_<experiment_id>.json`` through the shared
:mod:`repro.experiments.reporting` writer — the same writer the hot-path perf
benches use — so fig6/9/10/11/12 and every ablation leave a JSON row per run,
not just a text report.
"""

import os
import sys
import time

# Make ``src/`` importable when the package is not installed (offline checkouts).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402

from repro.experiments.reporting import (  # noqa: E402
    experiment_perf_payload,
    format_experiment,
    write_perf_point,
)


_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def run_experiment(benchmark, experiment_fn, **kwargs):
    """Run one figure-reproduction function under pytest-benchmark.

    The paper-style rows/series are printed (visible with ``pytest -s``) and
    also written to ``benchmarks/results/<experiment_id>.txt`` so a plain
    ``--benchmark-only`` run still leaves the reproduced tables on disk, plus
    a ``BENCH_<experiment_id>.json`` perf point recording the figure and its
    wall-clock cost.
    """
    timing = {}

    def timed_run():
        start = time.perf_counter()
        value = experiment_fn(**kwargs)
        timing["seconds"] = time.perf_counter() - start
        return value

    result = benchmark.pedantic(timed_run, rounds=1, iterations=1)
    text = format_experiment(result)
    print()
    print(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, f"{result.experiment_id}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    write_perf_point(
        _RESULTS_DIR,
        result.experiment_id,
        experiment_perf_payload(result, seconds=timing.get("seconds")),
    )
    return result


@pytest.fixture()
def experiment_runner(benchmark):
    """Fixture exposing :func:`run_experiment` bound to the current benchmark."""

    def runner(experiment_fn, **kwargs):
        return run_experiment(benchmark, experiment_fn, **kwargs)

    return runner


def record_bench_report(name, payload):
    """Write a machine-readable ``BENCH_<name>.json`` perf report.

    Thin wrapper over :func:`repro.experiments.reporting.write_perf_point`
    (the shared writer) kept for the perf benches' existing call sites.
    Returns the path written.
    """
    return write_perf_point(_RESULTS_DIR, name, payload)


@pytest.fixture()
def bench_reporter():
    """Fixture exposing :func:`record_bench_report` (no pytest-benchmark needed)."""
    return record_bench_report
