"""Whole-grid SweepPrograms: one compiled program per fidelity sweep.

Two claims of the whole-grid refactor are measured here and recorded in
``benchmarks/results/BENCH_grid_sweep.json``:

1. **Iris SWAP-test grid speedup.**  A ``(shift rows x test samples)``
   fidelity sweep used to construct, bind, and execute one discriminator
   circuit per grid element.  The whole-grid path compiles the builder's
   symbolic discriminator ONCE — trained angles and encoder angles both as
   bind-site columns — and feeds the full bindings matrix to the backend,
   so no per-sample circuits exist at all.  Wall clock is compared against
   both the per-sample loop (one ``fidelity`` call per element) and the
   batched circuit stream (the pre-refactor ``fidelity_matrix`` path), on
   the sampled and noisy backends, and every comparison must stay
   draw-for-draw **bit-identical** under a shared seed.

2. **Predicted vs measured peak memory with a shared prefix.**  On the
   17-qubit synthetic-MNIST grid, the ``TilePlan.for_grid_sweep`` executor
   evolves the trained-state prefix once per single-row tile (certified by
   VER403) and broadcasts it across the tile's samples.  The VER2xx cost
   model predicts the tiled sweep's peak bytes and its prefix-discounted
   per-element contraction count; tracemalloc measures the real peak
   alongside.

Runs as a pytest test (``pytest benchmarks/bench_grid_sweep.py -s``) or
standalone (``PYTHONPATH=src python benchmarks/bench_grid_sweep.py``).
"""

import time
import tracemalloc

import numpy as np

from repro.analysis.cost import estimate_cost, verify_cost
from repro.analysis.equiv import shared_prefix_length
from repro.core.model import QuClassi
from repro.core.swap_test import SwapTestFidelityEstimator
from repro.datasets import generate_synthetic_mnist, load_iris, prepare_task
from repro.hardware import IBMQBackend
from repro.quantum.backend import SampledBackend
from repro.quantum.program import SweepProgram, TilePlan

DEVICE = "ibmq_london"
SHOTS = 1024
TRAIN_EPOCHS = 3
SEED = 0
#: Parameter-shift-style rows of the Iris sweep grid.
SHIFT_ROWS = 17
#: Test samples swept per row; ``None`` sweeps the full Iris test split.
SAMPLE_LIMIT = None
#: Warm repetitions per timed mode; the best time is reported.
REPETITIONS = 3
#: The acceptance bar: whole-grid must beat per-sample circuits by this much.
MIN_GRID_SPEEDUP = 3.0

#: Memory workload: parameter-shift rows x samples on the 17-qubit grid.
MNIST_ROWS = 4
MNIST_SAMPLES = 24
MNIST_BUDGET_AMPLITUDES = 2**21


def _trained_iris_model():
    """Train the QC-S Iris model whose sweep grid is measured."""
    data = prepare_task(load_iris(), n_components=None, rng=SEED)
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=SEED)
    model.fit(data.x_train, data.y_train, epochs=TRAIN_EPOCHS, learning_rate=0.1)
    return model, data


def _estimator(builder, backend_factory, *, force_stream=False):
    estimator = SwapTestFidelityEstimator(builder, backend=backend_factory(), shots=SHOTS)
    if force_stream:
        estimator.backend.supports_grid_programs = False
    return estimator


def _best_sweep_seconds(estimator, rows, samples):
    best = None
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        estimator.fidelity_matrix(rows, samples)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best


def _grid_workload(model, data):
    rng = np.random.default_rng(SEED)
    rows = rng.uniform(0, np.pi, size=(SHIFT_ROWS, model.parameters_per_class))
    samples = data.x_test if SAMPLE_LIMIT is None else data.x_test[:SAMPLE_LIMIT]
    return rows, samples


def _compare_backend(builder, rows, samples, backend_factory, *, time_stream):
    """Loop vs (stream vs) grid on fresh same-seeded backends of one kind."""
    # Seed matches first: every mode's FIRST sweep on a fresh backend must
    # produce bitwise the same numbers — that is the refactor's guarantee.
    loop_estimator = _estimator(builder, backend_factory)
    loop_start = time.perf_counter()
    loop_fidelities = np.stack(
        [
            [loop_estimator.fidelity(row, sample) for sample in samples]
            for row in rows
        ]
    )
    per_sample_seconds = time.perf_counter() - loop_start

    grid_estimator = _estimator(builder, backend_factory)
    grid_fidelities = grid_estimator.fidelity_matrix(rows, samples)
    grid_seconds = _best_sweep_seconds(grid_estimator, rows, samples)

    payload = {
        "per_sample_seconds": per_sample_seconds,
        "grid_seconds": grid_seconds,
        "speedup_vs_per_sample": per_sample_seconds / grid_seconds,
        "seed_match": bool(np.array_equal(grid_fidelities, loop_fidelities)),
    }
    if time_stream:
        stream_estimator = _estimator(builder, backend_factory, force_stream=True)
        stream_fidelities = stream_estimator.fidelity_matrix(rows, samples)
        payload["stream_seconds"] = _best_sweep_seconds(stream_estimator, rows, samples)
        payload["speedup_vs_stream"] = payload["stream_seconds"] / grid_seconds
        payload["seed_match_vs_stream"] = bool(
            np.array_equal(grid_fidelities, stream_fidelities)
        )
    return payload


def run_iris_grid_benchmark():
    """Per-sample loop vs circuit stream vs whole-grid on the Iris sweep."""
    model, data = _trained_iris_model()
    rows, samples = _grid_workload(model, data)
    sampled = _compare_backend(
        model.builder,
        rows,
        samples,
        lambda: SampledBackend(shots=SHOTS, seed=SEED),
        time_stream=True,
    )
    noisy = _compare_backend(
        model.builder,
        rows,
        samples,
        lambda: IBMQBackend(DEVICE, seed=SEED),
        time_stream=False,
    )
    return {
        "workload": {
            "dataset": "iris",
            "architecture": "s",
            "num_classes": 3,
            "rows": int(rows.shape[0]),
            "num_samples": int(samples.shape[0]),
            "grid_elements": int(rows.shape[0] * samples.shape[0]),
            "device": DEVICE,
            "shots": SHOTS,
            "train_epochs": TRAIN_EPOCHS,
            "seed": SEED,
        },
        "sampled": sampled,
        "noisy": noisy,
    }


def run_grid_memory_benchmark(rows=None, samples=None, budget_amplitudes=None):
    """Cost-model prediction vs tracemalloc on the 17-qubit MNIST grid."""
    rows = MNIST_ROWS if rows is None else rows
    samples = MNIST_SAMPLES if samples is None else samples
    budget_amplitudes = (
        MNIST_BUDGET_AMPLITUDES if budget_amplitudes is None else budget_amplitudes
    )
    samples_per_digit = max(samples, 16)
    data = prepare_task(
        generate_synthetic_mnist(
            digits=(3, 6), samples_per_digit=samples_per_digit, rng=SEED
        ),
        n_components=16,
        rng=SEED,
    )
    model = QuClassi(num_features=16, num_classes=2, architecture="s", seed=SEED)
    builder = model.builder
    rng = np.random.default_rng(SEED)
    parameter_matrix = rng.uniform(0, np.pi, size=(rows, model.parameters_per_class))
    features = data.x_train[:samples]

    program = SweepProgram.compile(
        builder.symbolic_discriminator(),
        bind_floats=False,
        parameters=builder.grid_parameters,
        name="mnist-16-s:grid",
    )
    element_amplitudes = 2**program.num_qubits
    plan = TilePlan.for_grid_sweep(
        rows, features.shape[0], element_amplitudes, budget_amplitudes
    )
    # The shared prefix of one single-row tile: trained columns constant.
    bindings = builder.grid_bindings(parameter_matrix, features)
    prefix_steps = shared_prefix_length(program, bindings[: features.shape[0]])
    predicted = estimate_cost(program, plan, shared_prefix_steps=prefix_steps)
    unshared = estimate_cost(program, plan)
    cost_findings = [d.code for d in verify_cost(program, plan)]

    estimator = SwapTestFidelityEstimator(
        builder,
        backend=SampledBackend(shots=SHOTS, seed=SEED),
        shots=SHOTS,
        max_batch_amplitudes=budget_amplitudes,
    )
    estimator.fidelity_matrix(parameter_matrix, features)  # warm the caches
    tracemalloc.start()
    start = time.perf_counter()
    estimator.fidelity_matrix(parameter_matrix, features)
    grid_seconds = time.perf_counter() - start
    _, measured_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "workload": {
            "dataset": "synthetic_mnist",
            "pair": [3, 6],
            "num_features": 16,
            "discriminator_qubits": int(program.num_qubits),
            "rows": int(rows),
            "samples": int(features.shape[0]),
            "shots": SHOTS,
            "seed": SEED,
        },
        "budget_amplitudes": int(budget_amplitudes),
        "sample_tile": int(plan.sample_tile),
        "num_tiles": int(plan.num_tiles),
        "shared_prefix_steps": int(prefix_steps),
        "program_steps": len(program.steps),
        "grid_seconds": grid_seconds,
        "measured_peak_bytes": int(measured_peak),
        "predicted_peak_bytes": int(predicted.peak_bytes),
        "predicted_vs_measured": float(predicted.peak_bytes / measured_peak),
        "element_contractions": int(predicted.element_contractions),
        "element_contractions_unshared": int(unshared.element_contractions),
        "prefix_contraction_saving": float(
            1.0 - predicted.element_contractions / unshared.element_contractions
        ),
        # VER205 is expected: the 2**21 budget holds a 2**17 statevector
        # element but not one 4**17 density element.
        "cost_findings": cost_findings,
    }


def run_grid_sweep_benchmark():
    """Run both measurements and return the combined payload."""
    iris = run_iris_grid_benchmark()
    memory = run_grid_memory_benchmark()
    return {
        "iris_grid": iris,
        "mnist_memory": memory,
        # Headline acceptance numbers.
        "speedup": iris["sampled"]["speedup_vs_per_sample"],
        "seed_match": bool(
            iris["sampled"]["seed_match"]
            and iris["sampled"]["seed_match_vs_stream"]
            and iris["noisy"]["seed_match"]
        ),
    }


def test_grid_sweep_benchmark(bench_reporter):
    payload = run_grid_sweep_benchmark()
    path = bench_reporter("grid_sweep", payload)
    iris = payload["iris_grid"]
    memory = payload["mnist_memory"]
    print()
    print(
        f"iris grid: per-sample {iris['sampled']['per_sample_seconds']:.2f}s, "
        f"stream {iris['sampled']['stream_seconds'] * 1000:.0f}ms, grid "
        f"{iris['sampled']['grid_seconds'] * 1000:.0f}ms "
        f"({iris['sampled']['speedup_vs_per_sample']:.1f}x / "
        f"{iris['sampled']['speedup_vs_stream']:.2f}x); noisy "
        f"{iris['noisy']['speedup_vs_per_sample']:.1f}x; MNIST 17q peak "
        f"{memory['measured_peak_bytes'] / 2**20:.0f} MiB vs predicted "
        f"{memory['predicted_peak_bytes'] / 2**20:.0f} MiB, prefix "
        f"{memory['shared_prefix_steps']}/{memory['program_steps']} steps "
        f"-> {path}"
    )
    assert payload["seed_match"] is True
    assert payload["speedup"] >= MIN_GRID_SPEEDUP
    assert iris["noisy"]["speedup_vs_per_sample"] >= MIN_GRID_SPEEDUP
    assert iris["sampled"]["speedup_vs_stream"] > 1.0
    assert memory["shared_prefix_steps"] > 0
    assert memory["element_contractions"] < memory["element_contractions_unshared"]
    # The coarse model must bound the real peak within its calibrated band.
    assert 0.5 <= memory["predicted_vs_measured"] <= 1.5
    assert memory["cost_findings"] == ["VER205"]


if __name__ == "__main__":
    from conftest import record_bench_report

    result = run_grid_sweep_benchmark()
    report_path = record_bench_report("grid_sweep", result)
    iris = result["iris_grid"]
    memory = result["mnist_memory"]
    print(
        f"iris sampled: per-sample {iris['sampled']['per_sample_seconds']:.2f}s  "
        f"stream {iris['sampled']['stream_seconds'] * 1000:.0f}ms  grid "
        f"{iris['sampled']['grid_seconds'] * 1000:.0f}ms  speedup "
        f"{iris['sampled']['speedup_vs_per_sample']:.1f}x"
    )
    print(
        f"iris noisy: per-sample {iris['noisy']['per_sample_seconds']:.2f}s  grid "
        f"{iris['noisy']['grid_seconds'] * 1000:.0f}ms  speedup "
        f"{iris['noisy']['speedup_vs_per_sample']:.1f}x"
    )
    print(
        f"MNIST 17q grid: measured {memory['measured_peak_bytes'] / 2**20:.0f} MiB  "
        f"predicted {memory['predicted_peak_bytes'] / 2**20:.0f} MiB  prefix "
        f"{memory['shared_prefix_steps']}/{memory['program_steps']}  "
        f"contractions {memory['element_contractions_unshared']} -> "
        f"{memory['element_contractions']}"
    )
    print(f"seed_match={result['seed_match']}  speedup={result['speedup']:.1f}x")
    print(f"report written to {report_path}")
