"""Fig. 6b — Iris accuracy: QC-S / QC-SD / QC-SDE vs DNN-12/56/112 baselines.

Paper shape: all QuClassi variants reach high (≈0.95) accuracy and the
similarly parameterised classical DNNs sit at or below the quantum models;
the smallest DNN (12 parameters) trails clearly.
"""

from repro.experiments import fig6b_iris_accuracy


def test_fig6b_iris_accuracy(experiment_runner):
    result = experiment_runner(
        fig6b_iris_accuracy,
        architectures=("s", "sd", "sde"),
        dnn_budgets=(12, 56, 112),
        epochs=25,
        seed=0,
    )
    by_model = {row["model"]: row for row in result.rows}

    for architecture in ("QC-S", "QC-SD", "QC-SDE"):
        assert by_model[architecture]["test_accuracy"] > 0.8

    smallest_dnn = min(
        (row for name, row in by_model.items() if name.startswith("DNN")),
        key=lambda row: row["parameters"],
    )
    best_quantum = max(
        by_model[name]["test_accuracy"] for name in ("QC-S", "QC-SD", "QC-SDE")
    )
    assert best_quantum >= smallest_dnn["test_accuracy"] - 0.05
