"""Section 5.4 text — IonQ (trapped ion) vs IBM-Q Cairo on the (3, 6) task.

Paper shape: the ideal simulator scores highest (97.8 % in the paper); the
fully connected IonQ machine loses a little accuracy; IBM-Q Cairo loses more
because its heavy-hexagon topology forces ~21 routed CNOTs into every
SWAP-test circuit that IonQ executes natively.
"""

from repro.experiments import ionq_vs_cairo


def test_ionq_vs_cairo(experiment_runner):
    result = experiment_runner(
        ionq_vs_cairo, pair=(3, 6), samples_per_digit=40, epochs=12, shots=4096, seed=0
    )
    by_backend = {row["backend"]: row for row in result.rows}

    ideal = by_backend["ideal_simulator"]
    ionq = by_backend["ionq_trapped_ion"]
    cairo = by_backend["ibmq_cairo"]

    # Routing cost: Cairo pays a large CNOT overhead, IonQ pays none.
    assert ionq["added_cx"] == 0
    assert cairo["added_cx"] >= 15  # paper reports 21 extra CNOTs

    # Accuracy ordering: ideal >= IonQ >= Cairo, with a tolerance because the
    # test split is small and noisy argmax decisions flip only occasionally.
    assert ideal["test_accuracy"] >= ionq["test_accuracy"] - 0.1
    assert ionq["test_accuracy"] >= cairo["test_accuracy"] - 0.1
    # All backends remain far above chance.
    assert min(ideal["test_accuracy"], ionq["test_accuracy"], cairo["test_accuracy"]) > 0.6
