"""Fig. 9 — binary synthetic-MNIST comparison (1/5, 3/6, 3/9, 3/8).

Paper shape: QC-S is competitive with or better than the TFQ-like and
QF-pNet-like baselines on every pair while using two orders of magnitude
fewer parameters than the large DNNs; the easy pair (1/5) scores higher than
the visually similar pair (3/8).
"""

import numpy as np

from repro.experiments import fig9_binary_classification


def test_fig9_binary_classification(experiment_runner):
    result = experiment_runner(
        fig9_binary_classification,
        pairs=((1, 5), (3, 6), (3, 9), (3, 8)),
        samples_per_digit=50,
        epochs=25,
        dnn_budgets=(306, 1218),
        seed=0,
    )

    qc_accuracies = [row["QC-S"] for row in result.rows]
    # Every pair learns far better than chance.
    assert min(qc_accuracies) > 0.6
    # QC-S is competitive with the quantum baselines on average.
    qf_accuracies = [row["QF-pNet-like"] for row in result.rows]
    tfq_accuracies = [row["TFQ-like"] for row in result.rows]
    assert np.mean(qc_accuracies) >= np.mean(tfq_accuracies) - 0.1
    assert np.mean(qc_accuracies) >= np.mean(qf_accuracies) - 0.1
    # Parameter budget: QC-S uses 32 parameters vs 1218 for the big DNN.
    assert all(row["QC-S_params"] == 32 for row in result.rows)
