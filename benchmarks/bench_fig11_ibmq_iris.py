"""Fig. 11 — Iris training-loss curves on (simulated) IBM-Q sites vs the simulator.

Paper shape: training converges on every site; the hardware curves track the
simulator's curve with a noise-dependent offset, and no site diverges.  The
dataset is heavily subsampled because every gradient entry costs two circuit
executions on the (density-matrix) hardware model, exactly as real-device
training is dominated by queue/shot cost in the paper.
"""

from repro.experiments import fig11_hardware_iris_loss


def test_fig11_hardware_iris_loss(experiment_runner):
    result = experiment_runner(
        fig11_hardware_iris_loss,
        sites=("ibmq_london", "ibmq_new_york", "ibmq_melbourne"),
        epochs=4,
        samples_per_class=4,
        shots=8000,
        seed=0,
    )

    simulator = result.series_by_name("simulator")
    assert simulator.y[-1] <= simulator.y[0]

    for site in ("ibmq_london", "ibmq_new_york", "ibmq_melbourne"):
        series = result.series_by_name(site)
        # Shape check: hardware training still makes progress (no divergence).
        assert series.y[-1] <= series.y[0] + 0.1
        # And the loss stays within a reasonable band of the simulator's curve.
        assert abs(series.y[-1] - simulator.y[-1]) < 0.8
