"""Ablation (§4.4) — epoch-scaled gradient shift vs fixed parameter-shift rule.

Design-choice check from DESIGN.md: the paper's shrinking shift trains at
least as stably as the classic fixed pi/2 shift on Iris.
"""

from repro.experiments import ablation_gradient_rule


def test_ablation_gradient_rule(experiment_runner):
    result = experiment_runner(ablation_gradient_rule, epochs=15, seed=0)
    by_rule = {row["gradient_rule"]: row for row in result.rows}

    for rule in ("epoch_scaled", "parameter_shift"):
        series = result.series_by_name(rule)
        assert series.y[-1] < series.y[0]  # both rules reduce the loss
        assert by_rule[rule]["test_accuracy"] > 0.6

    # The paper's rule is competitive with the fixed-shift ablation.
    assert by_rule["epoch_scaled"]["test_accuracy"] >= by_rule["parameter_shift"]["test_accuracy"] - 0.1
