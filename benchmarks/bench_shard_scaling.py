"""Serial vs sharded wall-clock on the Iris multi-class hardware sweep.

Measures what the ``repro.parallel`` executor buys on the paper's outer loop:
the Iris multi-class sweep across simulated IBM-Q sites (the fig. 11
workload), fanned out one sweep cell per backend through
:func:`repro.experiments.harness.run_cells`.

Each cell trains end-to-end on its own noisy backend with
``simulate_queue_latency=True``: every job *submission* sleeps out the
site's queue latency, modelling the shared public queue the paper calls the
dominant cost of its hardware runs.  That is exactly the regime where
multi-backend scale-out pays: a ``thread`` executor overlaps the queue waits
of all sites, so the sweep finishes in roughly one site's wall-clock instead
of the sum — independent of host core count.  (A compute-bound per-class
sharding measurement on the analytic estimator is recorded alongside for
reference; its scaling tracks the host's free cores, which on a single-core
CI box is ~1x.)

Sharding must not change the science: every worker reconstructs its backend
from a spec with the same seed the serial sweep uses, and the payload
records that all sharded runs reproduced the serial rows bit-for-bit.

Timings are written to ``benchmarks/results/BENCH_shard_scaling.json``.
Runs as a pytest test (``pytest benchmarks/bench_shard_scaling.py -s``) or
standalone (``PYTHONPATH=src python benchmarks/bench_shard_scaling.py``).
"""

import os
import time

import numpy as np

from repro.core import QuClassi
from repro.datasets import load_iris, prepare_task
from repro.experiments.harness import run_cells
from repro.hardware import IBMQBackend
from repro.parallel import ShardExecutor

SITES = ("ibmq_london", "ibmq_new_york", "ibmq_melbourne", "ibmq_rome")
EPOCHS = 2
SAMPLES_PER_CLASS = 3
SHOTS = 256
#: Simulated queue wait per job submission.  The real sites' calibrated
#: latencies are minutes; this scaled-down stand-in keeps the benchmark
#: tractable while preserving the latency-dominated shape of hardware sweeps.
QUEUE_LATENCY_SECONDS = 0.5
WORKER_COUNTS = (1, 2, 4)
SEED = 0
MIN_SPEEDUP = 1.8


def _sweep_cell(payload):
    """Train the Iris multi-class model on one latency-simulating site."""
    site, epochs, samples_per_class, shots, latency, seed = payload
    data = prepare_task(
        load_iris(), samples_per_class=samples_per_class, test_fraction=0.25, rng=seed
    )
    backend = IBMQBackend(site, seed=seed, simulate_queue_latency=True)
    backend.properties.queue_latency_seconds = latency
    model = QuClassi(
        num_features=4,
        num_classes=3,
        architecture="s",
        estimator="swap_test",
        backend=backend,
        shots=shots,
        seed=seed,
    )
    model.fit(
        data.x_train,
        data.y_train,
        epochs=epochs,
        learning_rate=0.1,
        batch_size=None,
    )
    return {
        "site": site,
        "losses": [float(value) for value in model.history_.losses],
        "weights": model.get_weights().tolist(),
        "jobs": backend.ledger.num_jobs,
    }


def _run_sweep(executor, sites, epochs, samples_per_class, shots, latency, seed):
    payloads = [
        (site, epochs, samples_per_class, shots, latency, seed) for site in sites
    ]
    start = time.perf_counter()
    rows = run_cells(
        _sweep_cell,
        payloads,
        keys=[("backend", site) for site in sites],
        executor=executor,
    )
    return time.perf_counter() - start, rows


def _compute_bound_fit(executor, seed):
    """Per-class sharded fit on the analytic estimator (compute-bound)."""
    data = prepare_task(load_iris(), n_components=None, rng=seed)
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=seed)
    start = time.perf_counter()
    model.fit(
        data.x_train, data.y_train, epochs=10, learning_rate=0.1, rng=seed, executor=executor
    )
    return time.perf_counter() - start, model.get_weights()


def run_shard_scaling_benchmark(
    sites=SITES,
    epochs: int = EPOCHS,
    samples_per_class: int = SAMPLES_PER_CLASS,
    shots: int = SHOTS,
    queue_latency_seconds: float = QUEUE_LATENCY_SECONDS,
    worker_counts=WORKER_COUNTS,
    seed: int = SEED,
):
    """Measure the sweep serially and at every worker count; verify equivalence."""
    serial_seconds, serial_rows = _run_sweep(
        ShardExecutor("serial"), sites, epochs, samples_per_class, shots,
        queue_latency_seconds, seed,
    )
    workers = {}
    rows_identical = True
    for count in worker_counts:
        seconds, rows = _run_sweep(
            ShardExecutor("thread", max_workers=count), sites, epochs,
            samples_per_class, shots, queue_latency_seconds, seed,
        )
        workers[str(count)] = seconds
        rows_identical = rows_identical and rows == serial_rows

    compute_serial_seconds, compute_serial_weights = _compute_bound_fit(
        ShardExecutor("serial"), seed
    )
    compute_sharded_seconds, compute_sharded_weights = _compute_bound_fit(
        ShardExecutor("thread", max_workers=4), seed
    )

    max_workers = str(max(worker_counts))
    return {
        "workload": {
            "dataset": "iris",
            "sweep": "multi-class training across simulated IBM-Q sites (fig11-style)",
            "sites": list(sites),
            "epochs": epochs,
            "samples_per_class": samples_per_class,
            "shots": shots,
            "queue_latency_seconds": queue_latency_seconds,
            "simulate_queue_latency": True,
            "seed": seed,
            "cpu_count": os.cpu_count(),
        },
        "serial_seconds": serial_seconds,
        "worker_seconds": workers,
        "speedup_at_max_workers": serial_seconds / workers[max_workers],
        "rows_bit_identical": bool(rows_identical),
        "jobs_per_cell": serial_rows[0]["jobs"],
        "compute_bound_fit": {
            "description": "per-class Trainer sharding, analytic estimator "
            "(scales with free cores, not queue overlap)",
            "serial_seconds": compute_serial_seconds,
            "four_worker_seconds": compute_sharded_seconds,
            "speedup": compute_serial_seconds / compute_sharded_seconds,
            "weights_bit_identical": bool(
                np.array_equal(compute_serial_weights, compute_sharded_weights)
            ),
        },
    }


def test_shard_scaling_speedup(bench_reporter):
    payload = run_shard_scaling_benchmark()
    path = bench_reporter("shard_scaling", payload)
    print()
    print(
        f"shard scaling: serial {payload['serial_seconds']:.2f}s, "
        f"4 workers {payload['worker_seconds']['4']:.2f}s, "
        f"speedup {payload['speedup_at_max_workers']:.1f}x -> {path}"
    )
    assert payload["rows_bit_identical"] is True
    assert payload["compute_bound_fit"]["weights_bit_identical"] is True
    assert payload["speedup_at_max_workers"] >= MIN_SPEEDUP


if __name__ == "__main__":
    from conftest import record_bench_report

    result = run_shard_scaling_benchmark()
    report_path = record_bench_report("shard_scaling", result)
    print(
        f"serial {result['serial_seconds']:.2f}s  "
        + "  ".join(
            f"{count}w {seconds:.2f}s"
            for count, seconds in result["worker_seconds"].items()
        )
        + f"  speedup {result['speedup_at_max_workers']:.1f}x  "
        f"rows identical {result['rows_bit_identical']}"
    )
    print(f"report written to {report_path}")
